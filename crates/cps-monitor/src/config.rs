//! Monitor configuration, loadable from a small TOML subset.
//!
//! The accepted grammar is flat `key = value` lines plus one optional
//! `[replay]` section — enough for deployment configs without an external
//! TOML dependency:
//!
//! ```toml
//! shards = 4
//! channel_capacity = 4096
//! overflow = "block"          # or "drop"
//! delta_t_minutes = 15        # seal policy: gap after which events seal
//! min_event_records = 2       # seal policy: trust filter
//! indexed_integration = true  # inverted-index live integration (default)
//! parallelism = 0             # forest-snapshot workers: 0 = all cores,
//!                             # 1 = sequential; output identical either way
//! red_cell_miles = 2.0
//! snapshot_dir = "/var/lib/cps-monitor"
//!
//! [replay]
//! scale = "small"
//! seed = 42
//! days = 1
//! ```

use cps_core::{Params, WindowSpec};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// What `ingest` does when a shard's channel is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the producer until the worker catches up (backpressure).
    Block,
    /// Drop the record and count it in the metrics.
    Drop,
}

/// Kill one shard's worker thread after it has processed a fixed number
/// of records (deterministic: the count is per-shard, not global).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerKill {
    /// Shard whose worker dies.
    pub shard: usize,
    /// Records the worker processes before exiting.
    pub after_records: u64,
}

/// Deterministically drop a contiguous burst of ingested records,
/// regardless of channel occupancy — simulates a sustained overflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DropBurst {
    /// Zero-based index (in ingest order) of the first dropped record.
    pub at_record: u64,
    /// Number of consecutive records dropped.
    pub len: u64,
}

/// Deterministic fault hooks for the test harness.
///
/// Defaults to no faults and is not part of the TOML config surface: the
/// hooks exist so `cps-testkit` can exercise worker death, drop
/// accounting, and scheduling perturbation without nondeterministic
/// thread timing. Production configs never set these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// Kill one worker mid-stream.
    pub kill_worker: Option<WorkerKill>,
    /// Drop a contiguous burst of records at ingest.
    pub drop_burst: Option<DropBurst>,
    /// Seed for per-worker scheduling jitter (tiny random sleeps) so a
    /// seeded test can perturb worker/merger interleaving reproducibly.
    pub jitter_seed: Option<u64>,
}

/// Replay source for the binary and benchmarks: a simulated deployment.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayConfig {
    /// `cps-sim` scale name (`tiny`/`small`/`medium`/`paper`).
    pub scale: String,
    /// Simulation seed.
    pub seed: u64,
    /// Days to replay.
    pub days: u32,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            scale: "small".to_string(),
            seed: 42,
            days: 1,
        }
    }
}

/// Full service configuration.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Number of spatial shards (worker threads).
    pub shards: usize,
    /// Bounded capacity of each shard's record channel.
    pub channel_capacity: usize,
    /// Behavior when a shard channel is full.
    pub overflow: OverflowPolicy,
    /// Extraction parameters (δd/δt/δs/δsim, seal policy).
    pub params: Params,
    /// Time discretization of the deployment.
    pub spec: WindowSpec,
    /// Grid cell size for the incrementally maintained red zones.
    pub red_cell_miles: f64,
    /// Where completed day buckets are persisted; `None` disables
    /// persistence.
    pub snapshot_dir: Option<PathBuf>,
    /// Replay source used by the `cps-monitor` binary.
    pub replay: ReplayConfig,
    /// Deterministic fault hooks; always [`FaultConfig::default`] (no
    /// faults) outside the test harness.
    pub faults: FaultConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            channel_capacity: 4096,
            overflow: OverflowPolicy::Block,
            params: Params::paper_defaults(),
            spec: WindowSpec::PEMS,
            red_cell_miles: 2.0,
            snapshot_dir: None,
            replay: ReplayConfig::default(),
            faults: FaultConfig::default(),
        }
    }
}

impl MonitorConfig {
    /// Parses the TOML subset described in the module docs, starting from
    /// defaults so every key is optional.
    pub fn from_toml_str(text: &str) -> Result<Self, String> {
        let entries = parse_flat_toml(text)?;
        let mut config = MonitorConfig::default();
        for (key, value) in &entries {
            match key.as_str() {
                "shards" => config.shards = value.as_usize(key)?,
                "channel_capacity" => config.channel_capacity = value.as_usize(key)?,
                "overflow" => {
                    config.overflow = match value.as_str(key)? {
                        "block" => OverflowPolicy::Block,
                        "drop" => OverflowPolicy::Drop,
                        other => return Err(format!("overflow: unknown policy {other:?}")),
                    }
                }
                "delta_t_minutes" => {
                    config.params.delta_t_minutes = value.as_usize(key)? as u32;
                }
                "min_event_records" => {
                    config.params.min_event_records = value.as_usize(key)? as u32;
                }
                "delta_d_miles" => config.params.delta_d_miles = value.as_f64(key)?,
                "delta_s" => config.params.delta_s = value.as_f64(key)?,
                "delta_sim" => config.params.delta_sim = value.as_f64(key)?,
                "indexed_integration" => {
                    config.params.indexed_integration = value.as_bool(key)?;
                }
                "parallelism" => config.params.parallelism = value.as_usize(key)?,
                "window_minutes" => {
                    config.spec = WindowSpec::new(value.as_usize(key)? as u32);
                }
                "red_cell_miles" => config.red_cell_miles = value.as_f64(key)?,
                "snapshot_dir" => {
                    config.snapshot_dir = Some(PathBuf::from(value.as_str(key)?));
                }
                "replay.scale" => config.replay.scale = value.as_str(key)?.to_string(),
                "replay.seed" => config.replay.seed = value.as_usize(key)? as u64,
                "replay.days" => config.replay.days = value.as_usize(key)? as u32,
                other => return Err(format!("unknown configuration key {other:?}")),
            }
        }
        config.validate()?;
        Ok(config)
    }

    /// Loads and parses a config file.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_toml_str(&text)
    }

    /// Checks cross-field invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("shards must be at least 1".to_string());
        }
        if self.shards > u16::MAX as usize {
            return Err("shards must fit in u16".to_string());
        }
        if self.channel_capacity == 0 {
            return Err("channel_capacity must be at least 1".to_string());
        }
        if self.red_cell_miles <= 0.0 || self.red_cell_miles.is_nan() {
            return Err("red_cell_miles must be positive".to_string());
        }
        if let Some(kill) = self.faults.kill_worker {
            if kill.shard >= self.shards {
                return Err(format!(
                    "faults.kill_worker: shard {} out of range (shards = {})",
                    kill.shard, self.shards
                ));
            }
        }
        self.params.validate()
    }
}

/// One parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
enum TomlValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl TomlValue {
    fn as_usize(&self, key: &str) -> Result<usize, String> {
        match self {
            TomlValue::Int(n) if *n >= 0 => Ok(*n as usize),
            other => Err(format!(
                "{key}: expected a non-negative integer, got {other:?}"
            )),
        }
    }

    fn as_f64(&self, key: &str) -> Result<f64, String> {
        match self {
            TomlValue::Float(x) => Ok(*x),
            TomlValue::Int(n) => Ok(*n as f64),
            other => Err(format!("{key}: expected a number, got {other:?}")),
        }
    }

    fn as_str(&self, key: &str) -> Result<&str, String> {
        match self {
            TomlValue::Str(s) => Ok(s),
            other => Err(format!("{key}: expected a string, got {other:?}")),
        }
    }

    fn as_bool(&self, key: &str) -> Result<bool, String> {
        match self {
            TomlValue::Bool(b) => Ok(*b),
            other => Err(format!("{key}: expected true or false, got {other:?}")),
        }
    }
}

/// Parses `key = value` lines with optional `[section]` headers into
/// `section.key`-prefixed entries. Comments (`#`) and blank lines are
/// skipped.
fn parse_flat_toml(text: &str) -> Result<BTreeMap<String, TomlValue>, String> {
    let mut entries = BTreeMap::new();
    let mut section = String::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(format!("line {}: bad section name {name:?}", lineno + 1));
            }
            section = name.to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`", lineno + 1));
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {}: bad key {key:?}", lineno + 1));
        }
        let full_key = if section.is_empty() {
            key.to_string()
        } else {
            format!("{section}.{key}")
        };
        let value = parse_value(value.trim())
            .ok_or_else(|| format!("line {}: bad value for {key:?}", lineno + 1))?;
        if entries.insert(full_key.clone(), value).is_some() {
            return Err(format!("line {}: duplicate key {full_key:?}", lineno + 1));
        }
    }
    Ok(entries)
}

/// Drops a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Option<TomlValue> {
    if let Some(inner) = text.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        // Basic strings without escapes cover paths and policy names.
        if inner.contains('"') || inner.contains('\\') {
            return None;
        }
        return Some(TomlValue::Str(inner.to_string()));
    }
    match text {
        "true" => return Some(TomlValue::Bool(true)),
        "false" => return Some(TomlValue::Bool(false)),
        _ => {}
    }
    if let Ok(n) = text.parse::<i64>() {
        return Some(TomlValue::Int(n));
    }
    if let Ok(x) = text.parse::<f64>() {
        return Some(TomlValue::Float(x));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        MonitorConfig::default().validate().unwrap();
    }

    #[test]
    fn full_config_parses() {
        let config = MonitorConfig::from_toml_str(
            r#"
            # deployment
            shards = 8
            channel_capacity = 512     # per shard
            overflow = "drop"
            delta_t_minutes = 20
            min_event_records = 3
            indexed_integration = false
            parallelism = 2
            red_cell_miles = 1.5
            snapshot_dir = "/tmp/monitor # not a comment"

            [replay]
            scale = "tiny"
            seed = 7
            days = 2
            "#,
        )
        .unwrap();
        assert_eq!(config.shards, 8);
        assert_eq!(config.channel_capacity, 512);
        assert_eq!(config.overflow, OverflowPolicy::Drop);
        assert_eq!(config.params.delta_t_minutes, 20);
        assert_eq!(config.params.min_event_records, 3);
        assert!(!config.params.indexed_integration);
        assert_eq!(config.params.parallelism, 2);
        assert_eq!(config.red_cell_miles, 1.5);
        assert_eq!(
            config.snapshot_dir.as_deref(),
            Some(std::path::Path::new("/tmp/monitor # not a comment"))
        );
        assert_eq!(config.replay.scale, "tiny");
        assert_eq!(config.replay.seed, 7);
        assert_eq!(config.replay.days, 2);
    }

    #[test]
    fn empty_config_is_defaults() {
        let config = MonitorConfig::from_toml_str("").unwrap();
        assert_eq!(config.shards, MonitorConfig::default().shards);
        assert_eq!(config.overflow, OverflowPolicy::Block);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(MonitorConfig::from_toml_str("shards = 0").is_err());
        assert!(MonitorConfig::from_toml_str("shards = -3").is_err());
        assert!(MonitorConfig::from_toml_str("overflow = \"explode\"").is_err());
        assert!(MonitorConfig::from_toml_str("indexed_integration = 1").is_err());
        assert!(MonitorConfig::from_toml_str("mystery_key = 1").is_err());
        assert!(MonitorConfig::from_toml_str("shards 4").is_err());
        assert!(MonitorConfig::from_toml_str("shards = 2\nshards = 3").is_err());
        assert!(MonitorConfig::from_toml_str("[re play]\nscale = \"tiny\"").is_err());
    }
}
