//! Mutable query-side state of the running service.
//!
//! The merger thread is the only writer; query handles take short read
//! passes under the same mutex. Three structures are maintained
//! incrementally as micro-clusters are finalized:
//!
//! - `micros_by_day` — the live (not yet persisted) day level of the
//!   forest;
//! - `region_f_by_day` — per-day, per-region total severity `F(Wᵢ, day)`.
//!   `F` is distributive (Property 4), so a query's red zones over any
//!   whole-day range come from summing these vectors — no scan of the
//!   micro-clusters, and the vectors survive day eviction so persisted
//!   days stay cheap to pre-filter;
//! - `macros` — live macro-clusters, kept at the Algorithm 3 fixpoint by
//!   re-running the work-queue step for each arriving micro-cluster only.

use atypical::similarity::similarity;
use atypical::AtypicalCluster;
use cps_core::ids::ClusterIdGen;
use cps_core::{Params, Severity, WindowSpec};
use cps_geo::grid::SensorPartition;
use std::collections::{BTreeMap, BTreeSet};

pub(crate) struct LiveState {
    pub(crate) ids: ClusterIdGen,
    /// Finalized micro-clusters per day, until the day is persisted.
    pub(crate) micros_by_day: BTreeMap<u32, Vec<AtypicalCluster>>,
    /// Per-day red-zone numerators `F(Wᵢ, day)`; retained after eviction.
    pub(crate) region_f_by_day: BTreeMap<u32, Vec<Severity>>,
    /// Live macro-clusters (pairwise similarity ≤ δsim invariant).
    pub(crate) macros: Vec<AtypicalCluster>,
    /// Days whose micro-clusters moved to the snapshot store.
    pub(crate) persisted_days: BTreeSet<u32>,
}

impl LiveState {
    pub(crate) fn new() -> Self {
        Self {
            ids: ClusterIdGen::new(1),
            micros_by_day: BTreeMap::new(),
            region_f_by_day: BTreeMap::new(),
            macros: Vec::new(),
            persisted_days: BTreeSet::new(),
        }
    }

    /// Admits one finalized micro-cluster: files it under its day (day of
    /// its first window), folds its severity into the day's region `F`
    /// vector, and integrates it into the live macro-clusters.
    pub(crate) fn admit(
        &mut self,
        cluster: AtypicalCluster,
        spec: WindowSpec,
        partition: &SensorPartition,
        params: &Params,
    ) {
        let day = spec.day_of(cluster.time_range().start);
        let f = self
            .region_f_by_day
            .entry(day)
            .or_insert_with(|| vec![Severity::ZERO; partition.num_regions() as usize]);
        for (sensor, severity) in cluster.sf.iter() {
            f[partition.region_of(sensor).index()] += severity;
        }
        self.integrate_macro(cluster.clone(), params);
        self.micros_by_day.entry(day).or_default().push(cluster);
    }

    /// One incremental step of Algorithm 3: the candidate is compared
    /// against the fixpoint set; a hit merges and re-enqueues, so the
    /// pairwise-non-similar invariant is restored before returning.
    fn integrate_macro(&mut self, cluster: AtypicalCluster, params: &Params) {
        let mut queue = vec![cluster];
        while let Some(candidate) = queue.pop() {
            let hit = self
                .macros
                .iter()
                .position(|m| similarity(&candidate, m, params.balance) > params.delta_sim);
            match hit {
                Some(i) => {
                    let existing = self.macros.swap_remove(i);
                    queue.push(candidate.merge(&existing, self.ids.next_id()));
                }
                None => self.macros.push(candidate),
            }
        }
    }

    /// Removes a completed day's micro-clusters for persistence. The
    /// day's `F` vector stays so red-zone guidance keeps covering it.
    pub(crate) fn evict_day(&mut self, day: u32) -> Option<Vec<AtypicalCluster>> {
        let micros = self.micros_by_day.remove(&day)?;
        self.persisted_days.insert(day);
        Some(micros)
    }
}
