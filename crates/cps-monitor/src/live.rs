//! Mutable query-side state of the running service.
//!
//! The merger thread is the only writer. Queries take one of two paths:
//! the classic mutex path (short read passes under the same lock the
//! merger writes under — kept as the differential-test oracle) and the
//! lock-free snapshot path, where the merger publishes immutable
//! [`cps_serve::LiveSnapshot`]s at a configurable cadence and readers pin
//! them through a [`cps_serve::ReadView`] without ever touching the lock.
//!
//! To make publication cheap, every container a snapshot exposes is held
//! copy-on-write: day buckets, per-day region `F` vectors, and the
//! persisted-day set live behind `Arc`s that snapshots share. The merger
//! mutates through [`Arc::make_mut`], which clones a bucket only when a
//! published snapshot still references it — so publication is a handful
//! of pointer bumps and mutation pays at most one day-bucket clone per
//! publication, never a full-state copy.
//!
//! Three structures are maintained incrementally as micro-clusters are
//! finalized:
//!
//! - `micros_by_day` — the live (not yet persisted) day level of the
//!   forest;
//! - `region_f_by_day` — per-day, per-region total severity `F(Wᵢ, day)`.
//!   `F` is distributive (Property 4), so a query's red zones over any
//!   whole-day range come from summing these vectors — no scan of the
//!   micro-clusters, and the vectors survive day eviction so persisted
//!   days stay cheap to pre-filter;
//! - `macros` — live macro-clusters, kept at the Algorithm 3 fixpoint by
//!   re-running the work-queue step for each arriving micro-cluster only.
//!   [`Params::indexed_integration`] (default on) selects the
//!   inverted-index integrator, which prunes result members sharing no
//!   sensor and no window with the arriving cluster instead of scanning
//!   the whole fixpoint set; both strategies maintain the same set and
//!   both instrument their scans ([`LiveMacros::stats`]).

use atypical::integrate::{IntegrationStats, TimeAlignment};
use atypical::similarity::similarity;
use atypical::AtypicalCluster;
use atypical::IndexedIntegrator;
use cps_core::ids::ClusterIdGen;
use cps_core::{Params, Severity, WindowSpec};
use cps_geo::grid::SensorPartition;
use cps_serve::LiveSnapshot;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The live macro-cluster fixpoint set, maintained by either integration
/// strategy. Live comparison uses absolute time windows (the monitor
/// integrates within its streaming horizon; cross-day folding happens in
/// offline forest roll-ups).
pub(crate) enum LiveMacros {
    /// Naive incremental scan — the oracle the indexed path is
    /// differential-tested against. Instrumented like the offline naive
    /// integrator: every similarity evaluation counts one comparison
    /// (including the evaluation that hits), every merge one merge.
    Naive {
        /// The fixpoint set.
        set: Vec<AtypicalCluster>,
        /// Scan counters (`candidates_pruned`/`bound_skips` stay zero:
        /// the naive path prunes nothing).
        stats: IntegrationStats,
    },
    /// Inverted-index candidate generation (see
    /// `atypical::integrate_index`). Boxed: the integrator's slab and
    /// scratch arrays dwarf the naive variant.
    Indexed(Box<IndexedIntegrator>),
}

impl LiveMacros {
    fn new(params: &Params) -> Self {
        if params.indexed_integration {
            LiveMacros::Indexed(Box::new(IndexedIntegrator::new(
                params,
                TimeAlignment::Absolute,
            )))
        } else {
            LiveMacros::Naive {
                set: Vec::new(),
                stats: IntegrationStats::default(),
            }
        }
    }

    /// Number of live macro-clusters.
    pub(crate) fn len(&self) -> usize {
        match self {
            LiveMacros::Naive { set, .. } => set.len(),
            LiveMacros::Indexed(ix) => ix.len(),
        }
    }

    /// Clones the current fixpoint set.
    pub(crate) fn snapshot(&self) -> Vec<AtypicalCluster> {
        match self {
            LiveMacros::Naive { set, .. } => set.clone(),
            LiveMacros::Indexed(ix) => ix.snapshot(),
        }
    }

    /// Scan counters from either strategy. Comparisons/merges are live on
    /// both paths; `candidates_pruned`/`bound_skips` are zero on the
    /// naive path (it prunes nothing, by construction).
    pub(crate) fn stats(&self) -> IntegrationStats {
        match self {
            LiveMacros::Naive { stats, .. } => *stats,
            LiveMacros::Indexed(ix) => ix.stats(),
        }
    }

    /// One incremental step of Algorithm 3: the candidate is compared
    /// against the fixpoint set; a hit merges and re-enqueues, so the
    /// pairwise-non-similar invariant is restored before returning.
    fn integrate(&mut self, cluster: AtypicalCluster, params: &Params, ids: &mut ClusterIdGen) {
        match self {
            LiveMacros::Indexed(ix) => ix.admit(cluster, ids),
            LiveMacros::Naive { set, stats } => {
                let mut queue = vec![cluster];
                while let Some(candidate) = queue.pop() {
                    let mut hit = None;
                    for (i, m) in set.iter().enumerate() {
                        stats.comparisons += 1;
                        if similarity(&candidate, m, params.balance) > params.delta_sim {
                            hit = Some(i);
                            break;
                        }
                    }
                    match hit {
                        Some(i) => {
                            let existing = set.swap_remove(i);
                            stats.merges += 1;
                            queue.push(candidate.merge(&existing, ids.next_id()));
                        }
                        None => set.push(candidate),
                    }
                }
            }
        }
    }
}

pub(crate) struct LiveState {
    pub(crate) ids: ClusterIdGen,
    /// Finalized micro-clusters per day, until the day is persisted.
    /// Copy-on-write: published snapshots share the day buckets.
    pub(crate) micros_by_day: BTreeMap<u32, Arc<Vec<AtypicalCluster>>>,
    /// Per-day red-zone numerators `F(Wᵢ, day)`; retained after eviction.
    pub(crate) region_f_by_day: BTreeMap<u32, Arc<Vec<Severity>>>,
    /// Live macro-clusters (pairwise similarity ≤ δsim invariant).
    pub(crate) macros: LiveMacros,
    /// Days whose micro-clusters moved to the snapshot store.
    pub(crate) persisted_days: Arc<BTreeSet<u32>>,
    /// Bumped once per day eviction; snapshots carry it so caches can
    /// tell "a day sealed" from "a cluster arrived".
    pub(crate) seal_epoch: u64,
    /// Memoized `Arc` of the macro fixpoint set, rebuilt lazily after a
    /// mutation so back-to-back publications with no intervening
    /// integration share one allocation.
    macros_memo: Option<Arc<Vec<AtypicalCluster>>>,
}

impl LiveState {
    pub(crate) fn new(params: &Params) -> Self {
        Self {
            ids: ClusterIdGen::new(1),
            micros_by_day: BTreeMap::new(),
            region_f_by_day: BTreeMap::new(),
            macros: LiveMacros::new(params),
            persisted_days: Arc::new(BTreeSet::new()),
            seal_epoch: 0,
            macros_memo: None,
        }
    }

    /// Rebuilds the live state from a checkpoint. The macro fixpoint set
    /// is restored by re-admitting each checkpointed cluster: the set is
    /// pairwise non-similar, so no admission merges — no IDs are consumed
    /// and both containers end holding exactly the checkpointed set (the
    /// indexed integrator additionally rebuilds its inverted index).
    pub(crate) fn restore(params: &Params, ckpt: &crate::durability::LiveCkpt) -> Self {
        let mut ids = ClusterIdGen::new(ckpt.next_id);
        let mut macros = LiveMacros::new(params);
        for cluster in &ckpt.macros {
            macros.integrate(cluster.clone(), params, &mut ids);
        }
        debug_assert_eq!(
            ids.peek(),
            ckpt.next_id,
            "restoring a fixpoint set must not merge"
        );
        let persisted: BTreeSet<u32> = ckpt.persisted_days.iter().copied().collect();
        Self {
            ids,
            micros_by_day: ckpt
                .micros_by_day
                .iter()
                .map(|(day, micros)| (*day, Arc::new(micros.clone())))
                .collect(),
            region_f_by_day: ckpt
                .region_f_by_day
                .iter()
                .map(|(day, f)| (*day, Arc::new(f.clone())))
                .collect(),
            macros,
            seal_epoch: persisted.len() as u64,
            persisted_days: Arc::new(persisted),
            macros_memo: None,
        }
    }

    /// Admits one finalized micro-cluster: files it under its day (day of
    /// its first window), folds its severity into the day's region `F`
    /// vector, and integrates it into the live macro-clusters.
    pub(crate) fn admit(
        &mut self,
        cluster: AtypicalCluster,
        spec: WindowSpec,
        partition: &SensorPartition,
        params: &Params,
    ) {
        let day = spec.day_of(cluster.time_range().start);
        let f = self
            .region_f_by_day
            .entry(day)
            .or_insert_with(|| Arc::new(vec![Severity::ZERO; partition.num_regions() as usize]));
        let f = Arc::make_mut(f);
        for (sensor, severity) in cluster.sf.iter() {
            f[partition.region_of(sensor).index()] += severity;
        }
        self.macros
            .integrate(cluster.clone(), params, &mut self.ids);
        self.macros_memo = None;
        Arc::make_mut(self.micros_by_day.entry(day).or_default()).push(cluster);
    }

    /// Removes a completed day's micro-clusters for persistence. The
    /// day's `F` vector stays so red-zone guidance keeps covering it.
    pub(crate) fn evict_day(&mut self, day: u32) -> Option<Arc<Vec<AtypicalCluster>>> {
        let micros = self.micros_by_day.remove(&day)?;
        Arc::make_mut(&mut self.persisted_days).insert(day);
        self.seal_epoch += 1;
        Some(micros)
    }

    /// Undoes [`evict_day`](Self::evict_day) after a failed persistence
    /// attempt, so the day keeps being served from memory.
    pub(crate) fn unevict_day(&mut self, day: u32, micros: Arc<Vec<AtypicalCluster>>) {
        Arc::make_mut(&mut self.persisted_days).remove(&day);
        self.micros_by_day.insert(day, micros);
    }

    /// The macro fixpoint set as a shared `Arc`, memoized until the next
    /// integration.
    pub(crate) fn macros_arc(&mut self) -> Arc<Vec<AtypicalCluster>> {
        self.macros_memo
            .get_or_insert_with(|| Arc::new(self.macros.snapshot()))
            .clone()
    }

    /// Builds an epoch-stamped publication of this state. Cheap: every
    /// container is shared copy-on-write with the live maps.
    pub(crate) fn publishable(&mut self, epoch: u64) -> LiveSnapshot {
        LiveSnapshot {
            epoch,
            seal_epoch: self.seal_epoch,
            micros_by_day: self.micros_by_day.clone(),
            region_f_by_day: self.region_f_by_day.clone(),
            macros: self.macros_arc(),
            persisted_days: self.persisted_days.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atypical::feature::{SpatialFeature, TemporalFeature};
    use cps_core::{ClusterId, SensorId, TimeWindow};

    fn cluster(id: u64, sensors: &[u32], windows: &[u32]) -> AtypicalCluster {
        let sf: SpatialFeature = sensors
            .iter()
            .map(|&s| (SensorId::new(s), Severity::from_minutes(10.0)))
            .collect();
        let tf: TemporalFeature = windows
            .iter()
            .map(|&w| (TimeWindow::new(w), Severity::from_minutes(10.0)))
            .collect();
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    /// The indexed live fixpoint must evolve exactly like the naive one
    /// under the same admission sequence (same clusters, same ids: the
    /// incremental step evaluates candidates in the same set order).
    #[test]
    fn indexed_live_macros_match_naive_admission() {
        let params = Params::paper_defaults();
        let naive_params = params.with_indexed_integration(false);
        let mut naive = LiveMacros::new(&naive_params);
        let mut indexed = LiveMacros::new(&params);
        assert!(matches!(indexed, LiveMacros::Indexed(_)));
        let mut ids_n = ClusterIdGen::new(100);
        let mut ids_i = ClusterIdGen::new(100);
        for i in 0..30u32 {
            let base = (i % 7) * 2;
            let c = cluster(
                u64::from(i),
                &[base, base + 1, base + 2],
                &[base, base + 1, base + 2],
            );
            naive.integrate(c.clone(), &params, &mut ids_n);
            indexed.integrate(c, &params, &mut ids_i);
            assert_eq!(naive.snapshot(), indexed.snapshot(), "step {i}");
        }
        assert_eq!(naive.len(), indexed.len());
        assert!(indexed.stats().merges > 0);
        // Both strategies walk the same work queue, so they merge the
        // same pairs; the index only skips comparisons it proves
        // fruitless, so the naive count dominates.
        assert_eq!(naive.stats().merges, indexed.stats().merges);
        assert!(naive.stats().comparisons >= indexed.stats().comparisons);
    }

    /// The naive scan instruments itself: comparisons and merges are
    /// counted (they fed all-zero gauges before), while the prune/bound
    /// counters stay zero — the naive path skips nothing.
    #[test]
    fn naive_stats_are_live() {
        let params = Params::paper_defaults().with_indexed_integration(false);
        let mut naive = LiveMacros::new(&params);
        let mut ids = ClusterIdGen::new(100);
        for i in 0..10u32 {
            naive.integrate(
                cluster(u64::from(i), &[1, 2, 3], &[1, 2, 3]),
                &params,
                &mut ids,
            );
        }
        let stats = naive.stats();
        assert!(stats.comparisons > 0, "scan evaluations must be counted");
        assert!(stats.merges > 0, "identical clusters must merge");
        assert_eq!(stats.candidates_pruned, 0);
        assert_eq!(stats.bound_skips, 0);
    }

    /// `indexed_integration = false` selects the naive container.
    #[test]
    fn params_flag_selects_strategy() {
        let naive_params = Params::paper_defaults().with_indexed_integration(false);
        assert!(matches!(
            LiveMacros::new(&naive_params),
            LiveMacros::Naive { .. }
        ));
        assert_eq!(
            LiveMacros::new(&naive_params).stats(),
            IntegrationStats::default()
        );
    }

    /// Publications share containers copy-on-write: a published snapshot
    /// keeps its day bucket bit-identical while the live state mutates on.
    #[test]
    fn publishable_snapshots_are_isolated_from_later_admissions() {
        let params = Params::paper_defaults();
        let network = cps_sim::TrafficSim::new(cps_sim::SimConfig::new(cps_sim::Scale::Tiny, 1))
            .network()
            .clone();
        let partition = cps_geo::grid::UniformGrid::over(&network, 2.0).partition(&network);
        let spec = WindowSpec::PEMS;
        let mut live = LiveState::new(&params);
        live.admit(cluster(1, &[0, 1], &[3, 4]), spec, &partition, &params);
        let snap = live.publishable(1);
        let frozen_micros = snap.micros_by_day.clone();
        let frozen_f = snap.region_f_by_day.clone();
        live.admit(cluster(2, &[5, 6], &[30, 31]), spec, &partition, &params);
        live.admit(cluster(3, &[0, 1], &[3, 4]), spec, &partition, &params);
        assert_eq!(snap.micros_by_day, frozen_micros, "pinned bucket unchanged");
        assert_eq!(snap.region_f_by_day, frozen_f, "pinned F vector unchanged");
        assert_eq!(snap.micros_by_day[&0].len(), 1);
        assert_eq!(live.micros_by_day[&0].len(), 3);
        // Eviction bumps the seal epoch and the persisted set, without
        // touching the published snapshot's view of either.
        let evicted = live.evict_day(0).expect("day 0 is live");
        assert_eq!(evicted.len(), 3);
        assert_eq!(live.seal_epoch, 1);
        assert!(snap.persisted_days.is_empty());
        assert_eq!(snap.seal_epoch, 0);
    }
}
