//! Mutable query-side state of the running service.
//!
//! The merger thread is the only writer; query handles take short read
//! passes under the same mutex. Three structures are maintained
//! incrementally as micro-clusters are finalized:
//!
//! - `micros_by_day` — the live (not yet persisted) day level of the
//!   forest;
//! - `region_f_by_day` — per-day, per-region total severity `F(Wᵢ, day)`.
//!   `F` is distributive (Property 4), so a query's red zones over any
//!   whole-day range come from summing these vectors — no scan of the
//!   micro-clusters, and the vectors survive day eviction so persisted
//!   days stay cheap to pre-filter;
//! - `macros` — live macro-clusters, kept at the Algorithm 3 fixpoint by
//!   re-running the work-queue step for each arriving micro-cluster only.
//!   [`Params::indexed_integration`] (default on) selects the
//!   inverted-index integrator, which prunes result members sharing no
//!   sensor and no window with the arriving cluster instead of scanning
//!   the whole fixpoint set; both strategies maintain the same set.

use atypical::integrate::{IntegrationStats, TimeAlignment};
use atypical::similarity::similarity;
use atypical::AtypicalCluster;
use atypical::IndexedIntegrator;
use cps_core::ids::ClusterIdGen;
use cps_core::{Params, Severity, WindowSpec};
use cps_geo::grid::SensorPartition;
use std::collections::{BTreeMap, BTreeSet};

/// The live macro-cluster fixpoint set, maintained by either integration
/// strategy. Live comparison uses absolute time windows (the monitor
/// integrates within its streaming horizon; cross-day folding happens in
/// offline forest roll-ups).
pub(crate) enum LiveMacros {
    /// Naive incremental scan — the oracle the indexed path is
    /// differential-tested against.
    Naive(Vec<AtypicalCluster>),
    /// Inverted-index candidate generation (see
    /// `atypical::integrate_index`). Boxed: the integrator's slab and
    /// scratch arrays dwarf the naive variant.
    Indexed(Box<IndexedIntegrator>),
}

impl LiveMacros {
    fn new(params: &Params) -> Self {
        if params.indexed_integration {
            LiveMacros::Indexed(Box::new(IndexedIntegrator::new(
                params,
                TimeAlignment::Absolute,
            )))
        } else {
            LiveMacros::Naive(Vec::new())
        }
    }

    /// Number of live macro-clusters.
    pub(crate) fn len(&self) -> usize {
        match self {
            LiveMacros::Naive(v) => v.len(),
            LiveMacros::Indexed(ix) => ix.len(),
        }
    }

    /// Clones the current fixpoint set.
    pub(crate) fn snapshot(&self) -> Vec<AtypicalCluster> {
        match self {
            LiveMacros::Naive(v) => v.clone(),
            LiveMacros::Indexed(ix) => ix.snapshot(),
        }
    }

    /// Counters from the indexed integrator (zeros on the naive path,
    /// which does not instrument its scan).
    pub(crate) fn stats(&self) -> IntegrationStats {
        match self {
            LiveMacros::Naive(_) => IntegrationStats::default(),
            LiveMacros::Indexed(ix) => ix.stats(),
        }
    }

    /// One incremental step of Algorithm 3: the candidate is compared
    /// against the fixpoint set; a hit merges and re-enqueues, so the
    /// pairwise-non-similar invariant is restored before returning.
    fn integrate(&mut self, cluster: AtypicalCluster, params: &Params, ids: &mut ClusterIdGen) {
        match self {
            LiveMacros::Indexed(ix) => ix.admit(cluster, ids),
            LiveMacros::Naive(macros) => {
                let mut queue = vec![cluster];
                while let Some(candidate) = queue.pop() {
                    let hit = macros
                        .iter()
                        .position(|m| similarity(&candidate, m, params.balance) > params.delta_sim);
                    match hit {
                        Some(i) => {
                            let existing = macros.swap_remove(i);
                            queue.push(candidate.merge(&existing, ids.next_id()));
                        }
                        None => macros.push(candidate),
                    }
                }
            }
        }
    }
}

pub(crate) struct LiveState {
    pub(crate) ids: ClusterIdGen,
    /// Finalized micro-clusters per day, until the day is persisted.
    pub(crate) micros_by_day: BTreeMap<u32, Vec<AtypicalCluster>>,
    /// Per-day red-zone numerators `F(Wᵢ, day)`; retained after eviction.
    pub(crate) region_f_by_day: BTreeMap<u32, Vec<Severity>>,
    /// Live macro-clusters (pairwise similarity ≤ δsim invariant).
    pub(crate) macros: LiveMacros,
    /// Days whose micro-clusters moved to the snapshot store.
    pub(crate) persisted_days: BTreeSet<u32>,
}

impl LiveState {
    pub(crate) fn new(params: &Params) -> Self {
        Self {
            ids: ClusterIdGen::new(1),
            micros_by_day: BTreeMap::new(),
            region_f_by_day: BTreeMap::new(),
            macros: LiveMacros::new(params),
            persisted_days: BTreeSet::new(),
        }
    }

    /// Rebuilds the live state from a checkpoint. The macro fixpoint set
    /// is restored by re-admitting each checkpointed cluster: the set is
    /// pairwise non-similar, so no admission merges — no IDs are consumed
    /// and both containers end holding exactly the checkpointed set (the
    /// indexed integrator additionally rebuilds its inverted index).
    pub(crate) fn restore(params: &Params, ckpt: &crate::durability::LiveCkpt) -> Self {
        let mut ids = ClusterIdGen::new(ckpt.next_id);
        let mut macros = LiveMacros::new(params);
        for cluster in &ckpt.macros {
            macros.integrate(cluster.clone(), params, &mut ids);
        }
        debug_assert_eq!(
            ids.peek(),
            ckpt.next_id,
            "restoring a fixpoint set must not merge"
        );
        Self {
            ids,
            micros_by_day: ckpt.micros_by_day.iter().cloned().collect(),
            region_f_by_day: ckpt.region_f_by_day.iter().cloned().collect(),
            macros,
            persisted_days: ckpt.persisted_days.iter().copied().collect(),
        }
    }

    /// Admits one finalized micro-cluster: files it under its day (day of
    /// its first window), folds its severity into the day's region `F`
    /// vector, and integrates it into the live macro-clusters.
    pub(crate) fn admit(
        &mut self,
        cluster: AtypicalCluster,
        spec: WindowSpec,
        partition: &SensorPartition,
        params: &Params,
    ) {
        let day = spec.day_of(cluster.time_range().start);
        let f = self
            .region_f_by_day
            .entry(day)
            .or_insert_with(|| vec![Severity::ZERO; partition.num_regions() as usize]);
        for (sensor, severity) in cluster.sf.iter() {
            f[partition.region_of(sensor).index()] += severity;
        }
        self.macros
            .integrate(cluster.clone(), params, &mut self.ids);
        self.micros_by_day.entry(day).or_default().push(cluster);
    }

    /// Removes a completed day's micro-clusters for persistence. The
    /// day's `F` vector stays so red-zone guidance keeps covering it.
    pub(crate) fn evict_day(&mut self, day: u32) -> Option<Vec<AtypicalCluster>> {
        let micros = self.micros_by_day.remove(&day)?;
        self.persisted_days.insert(day);
        Some(micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atypical::feature::{SpatialFeature, TemporalFeature};
    use cps_core::{ClusterId, SensorId, TimeWindow};

    fn cluster(id: u64, sensors: &[u32], windows: &[u32]) -> AtypicalCluster {
        let sf: SpatialFeature = sensors
            .iter()
            .map(|&s| (SensorId::new(s), Severity::from_minutes(10.0)))
            .collect();
        let tf: TemporalFeature = windows
            .iter()
            .map(|&w| (TimeWindow::new(w), Severity::from_minutes(10.0)))
            .collect();
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    /// The indexed live fixpoint must evolve exactly like the naive one
    /// under the same admission sequence (same clusters, same ids: the
    /// incremental step evaluates candidates in the same set order).
    #[test]
    fn indexed_live_macros_match_naive_admission() {
        let params = Params::paper_defaults();
        let mut naive = LiveMacros::Naive(Vec::new());
        let mut indexed = LiveMacros::new(&params);
        assert!(matches!(indexed, LiveMacros::Indexed(_)));
        let mut ids_n = ClusterIdGen::new(100);
        let mut ids_i = ClusterIdGen::new(100);
        for i in 0..30u32 {
            let base = (i % 7) * 2;
            let c = cluster(
                u64::from(i),
                &[base, base + 1, base + 2],
                &[base, base + 1, base + 2],
            );
            naive.integrate(c.clone(), &params, &mut ids_n);
            indexed.integrate(c, &params, &mut ids_i);
            assert_eq!(naive.snapshot(), indexed.snapshot(), "step {i}");
        }
        assert_eq!(naive.len(), indexed.len());
        assert!(indexed.stats().merges > 0);
    }

    /// `indexed_integration = false` selects the naive container.
    #[test]
    fn params_flag_selects_strategy() {
        let naive_params = Params::paper_defaults().with_indexed_integration(false);
        assert!(matches!(
            LiveMacros::new(&naive_params),
            LiveMacros::Naive(_)
        ));
        assert_eq!(
            LiveMacros::new(&naive_params).stats(),
            IntegrationStats::default()
        );
    }
}
