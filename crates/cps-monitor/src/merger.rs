//! The merger thread: cross-shard reconciliation, live-state maintenance,
//! and snapshot persistence.
//!
//! ## Why reconciliation is exact
//!
//! Every record of a shard-`s` event lives on a shard-`s` sensor, so a
//! direct δd/δt relation between records of two *different* sealed events
//! can only pair sensors from different shards (two events sealed by the
//! same shard are distinct connected components of the relation restricted
//! to that shard — had any pair of their records been related, the
//! extractor would have merged them while open). The merger therefore only
//! tracks events containing *boundary* records, unions them when a
//! boundary record of one is within `δd` (via [`ShardMap::cross_neighbors`])
//! and `max_gap` windows of a boundary record of the other, and lets
//! union-find close the transitive chains. The result equals the global
//! connected components the single-threaded extractor would have built.
//!
//! ## When a pending component may finalize
//!
//! Let `last` be the latest window among the component's boundary records.
//! A future or still-open record can join the component only through a
//! boundary record with window ≤ `last + max_gap`. So the component is
//! complete once every shard either finished, or has both its clock and
//! its oldest open *boundary* record strictly past `last + max_gap`
//! (workers report both with every window advance). Interior events —
//! no boundary record — are exact global components the moment they seal
//! and bypass the pool entirely.
//!
//! ## When a day may be persisted
//!
//! Day `d` is complete once every shard's clock passed
//! `day_end + max_gap` (nothing sealing later can *start* in day `d`),
//! no open event began in day `d` (workers report the oldest open record),
//! and no pending component has a record in day `d`. Its micro-clusters
//! then move to the [`ForestStore`] day level and leave live memory.

use crate::durability::MergerCkpt;
use crate::metrics::Metrics;
use crate::service::SharedState;
use crate::shard::ShardMap;
use atypical::online::SealedRawEvent;
use atypical::{AtypicalCluster, AtypicalEvent};
use cps_core::fx::FxHashMap;
use cps_core::{AtypicalRecord, SensorId, TimeWindow};
use crossbeam::channel::{Receiver, Sender};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Worker → merger protocol.
pub(crate) enum MergerMsg {
    /// Events sealed by one shard since the last advance.
    Sealed { events: Vec<SealedRawEvent> },
    /// One shard's progress report, sent on every window advance.
    Clock {
        shard: usize,
        /// The shard extractor's current window.
        window: TimeWindow,
        /// Oldest record among the shard's still-open events.
        open_floor: Option<TimeWindow>,
        /// Oldest *boundary-sensor* record among still-open events.
        boundary_floor: Option<TimeWindow>,
    },
    /// The shard's channel closed and its final events were flushed.
    Done { shard: usize },
    /// Quiescent-checkpoint barrier: the ingest thread is blocked and
    /// every worker has acked, so all prior messages are already applied.
    /// The merger serializes its private state and replies.
    Checkpoint { reply: Sender<Vec<u8>> },
}

/// One sealed boundary event waiting for reconciliation.
struct PendingEvent {
    records: Vec<AtypicalRecord>,
    /// Latest window among records at boundary sensors.
    boundary_last: TimeWindow,
    /// Earliest window among all records (for day-completion checks).
    min_window: TimeWindow,
}

pub(crate) struct Merger {
    shared: Arc<SharedState>,
    map: Arc<ShardMap>,
    max_gap: u32,
    /// Slab of pending events; `None` = finalized.
    pending: Vec<Option<PendingEvent>>,
    /// Union-find over slab slots.
    parent: Vec<usize>,
    /// Boundary records of pending events, indexed by sensor.
    by_sensor: FxHashMap<SensorId, Vec<(usize, TimeWindow)>>,
    clock: Vec<Option<TimeWindow>>,
    open_floor: Vec<Option<TimeWindow>>,
    boundary_floor: Vec<Option<TimeWindow>>,
    done: Vec<bool>,
    /// Micro-clusters admitted since the last snapshot publication.
    clusters_since_publish: u64,
    /// Global window advances since the last snapshot publication.
    windows_since_publish: u32,
    /// Latest window any shard has reported (the global clock).
    global_window: Option<TimeWindow>,
}

impl Merger {
    pub(crate) fn new(shared: Arc<SharedState>, map: Arc<ShardMap>, max_gap: u32) -> Self {
        let shards = map.num_shards();
        Self {
            shared,
            map,
            max_gap,
            pending: Vec::new(),
            parent: Vec::new(),
            by_sensor: FxHashMap::default(),
            clock: vec![None; shards],
            open_floor: vec![None; shards],
            boundary_floor: vec![None; shards],
            done: vec![false; shards],
            clusters_since_publish: 0,
            windows_since_publish: 0,
            global_window: None,
        }
    }

    /// Restores a merger from its checkpoint part. Compaction note: the
    /// checkpoint stores one record list per union-find component; a
    /// single restored slot per component is behavior-equivalent to the
    /// original slots because (a) finalize sorts records before building
    /// the event, (b) the component's boundary-record set — what future
    /// unions and `component_closed` consult — is preserved, and (c)
    /// `boundary_last`/`min_window` are recomputed maxima/minima over the
    /// same records.
    pub(crate) fn restore(
        shared: Arc<SharedState>,
        map: Arc<ShardMap>,
        max_gap: u32,
        ckpt: &MergerCkpt,
    ) -> Self {
        let mut merger = Self::new(shared, map, max_gap);
        for (shard, &(clock, open_floor, boundary_floor, done)) in ckpt.progress.iter().enumerate()
        {
            merger.clock[shard] = clock;
            merger.open_floor[shard] = open_floor;
            merger.boundary_floor[shard] = boundary_floor;
            merger.done[shard] = done;
        }
        for records in &ckpt.components {
            let slot = merger.pending.len();
            let boundary: Vec<&AtypicalRecord> = records
                .iter()
                .filter(|r| merger.map.is_boundary(r.sensor))
                .collect();
            let boundary_last = boundary
                .iter()
                .map(|r| r.window)
                .max()
                .expect("pooled components contain boundary records");
            let min_window = records
                .iter()
                .map(|r| r.window)
                .min()
                .expect("components are non-empty");
            // Components were pairwise unrelated at the cut (related ones
            // were already unioned), so no cross-slot unions re-form here.
            for r in &boundary {
                merger
                    .by_sensor
                    .entry(r.sensor)
                    .or_default()
                    .push((slot, r.window));
            }
            merger.pending.push(Some(PendingEvent {
                records: records.clone(),
                boundary_last,
                min_window,
            }));
            merger.parent.push(slot);
        }
        merger
    }

    /// Serializes the merger-private state for a checkpoint: per-shard
    /// progress plus the pending pool compacted to one record list per
    /// union-find component (slab order of each component's first slot).
    fn serialize_state(&mut self) -> Vec<u8> {
        let mut roots: FxHashMap<usize, usize> = FxHashMap::default();
        let mut components: Vec<Vec<AtypicalRecord>> = Vec::new();
        for slot in 0..self.pending.len() {
            if self.pending[slot].is_none() {
                continue;
            }
            let root = self.find(slot);
            let idx = *roots.entry(root).or_insert_with(|| {
                components.push(Vec::new());
                components.len() - 1
            });
            components[idx].extend(
                self.pending[slot]
                    .as_ref()
                    .expect("checked live")
                    .records
                    .iter()
                    .copied(),
            );
        }
        let ckpt = MergerCkpt {
            progress: (0..self.map.num_shards())
                .map(|s| {
                    (
                        self.clock[s],
                        self.open_floor[s],
                        self.boundary_floor[s],
                        self.done[s],
                    )
                })
                .collect(),
            components,
        };
        let mut buf = Vec::new();
        ckpt.encode(&mut buf);
        buf
    }

    /// Applies one message and runs the finalize/persist passes — the
    /// per-message body of [`run`](Self::run), shared with single-threaded
    /// recovery replay.
    pub(crate) fn apply(&mut self, msg: MergerMsg) {
        match msg {
            MergerMsg::Sealed { events } => {
                for event in events {
                    self.admit_sealed(event);
                }
            }
            MergerMsg::Clock {
                shard,
                window,
                open_floor,
                boundary_floor,
            } => {
                self.clock[shard] = Some(window);
                self.open_floor[shard] = open_floor;
                self.boundary_floor[shard] = boundary_floor;
                // Count *global* clock advances (shard clocks move in
                // lock-step per broadcast, so only the first report of a
                // new window counts) toward the window publication
                // cadence: quiet periods still refresh readers.
                if self.global_window.is_none_or(|g| window > g) {
                    self.global_window = Some(window);
                    self.windows_since_publish += 1;
                }
            }
            MergerMsg::Done { shard } => {
                self.done[shard] = true;
                self.open_floor[shard] = None;
                self.boundary_floor[shard] = None;
            }
            MergerMsg::Checkpoint { reply } => {
                let _ = reply.send(self.serialize_state());
                return;
            }
        }
        self.finalize_ready();
        self.persist_complete_days();
        self.publish_if_due();
    }

    /// Publishes a fresh snapshot when either cadence counter crossed its
    /// configured threshold: admissions since the last publication
    /// (bumped by [`finalize_records`](Self::finalize_records)) or global
    /// window advances (bumped by the `Clock` handler). Both counters
    /// reset together — one publication covers everything accumulated.
    fn publish_if_due(&mut self) {
        let serving = self.shared.serving;
        if self.clusters_since_publish >= serving.publish_every_clusters
            || self.windows_since_publish >= serving.publish_every_windows
        {
            let mut live = self.shared.live.lock();
            self.shared.publish_snapshot(&mut live);
            self.clusters_since_publish = 0;
            self.windows_since_publish = 0;
        }
    }

    pub(crate) fn run(mut self, rx: Receiver<MergerMsg>) {
        while let Ok(msg) = rx.recv() {
            self.apply(msg);
        }
        // All senders dropped: no more input exists (a shard that died
        // without reporting Done still closed its channel when its thread
        // exited), so every pending component is complete. A missing Done
        // at this point *is* a worker death — record it here so deaths the
        // ingest path never observed (all its sends were buffered) are
        // still counted deterministically.
        for shard in 0..self.map.num_shards() {
            if !self.done[shard] {
                self.metrics().mark_worker_dead(shard);
            }
        }
        self.finalize_all();
        self.persist_complete_days();
        // Final publication: after `finish` joins this thread, the latest
        // snapshot equals the quiescent live state, so [`ReadView`] and
        // the mutex path answer identically.
        let mut live = self.shared.live.lock();
        self.shared.publish_snapshot(&mut live);
    }

    fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Routes one sealed event: interior events finalize immediately;
    /// boundary events enter the pool and union with any related pending
    /// event.
    fn admit_sealed(&mut self, event: SealedRawEvent) {
        self.metrics().events_sealed.fetch_add(1, Ordering::Relaxed);
        let boundary: Vec<AtypicalRecord> = event
            .records
            .iter()
            .copied()
            .filter(|r| self.map.is_boundary(r.sensor))
            .collect();
        if boundary.is_empty() {
            self.finalize_records(event.records);
            return;
        }
        self.metrics()
            .boundary_events
            .fetch_add(1, Ordering::Relaxed);

        let slot = self.pending.len();
        let boundary_last = boundary.iter().map(|r| r.window).max().expect("non-empty");
        let min_window = event
            .records
            .iter()
            .map(|r| r.window)
            .min()
            .expect("sealed events are non-empty");
        self.pending.push(Some(PendingEvent {
            records: event.records,
            boundary_last,
            min_window,
        }));
        self.parent.push(slot);

        // Union with every related pending event. Cross-shard relations
        // always pair boundary sensors with their cross-shard δd-neighbors,
        // so the by-sensor index over boundary records is complete.
        let mut related = Vec::new();
        for r in &boundary {
            for &nb in self.map.cross_neighbors(r.sensor) {
                if let Some(list) = self.by_sensor.get(&nb) {
                    for &(other, w) in list {
                        if self.pending[other].is_some() && r.window.gap(w) <= self.max_gap {
                            related.push(other);
                        }
                    }
                }
            }
        }
        for other in related {
            self.union(slot, other);
        }
        for r in &boundary {
            self.by_sensor
                .entry(r.sensor)
                .or_default()
                .push((slot, r.window));
        }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
            self.metrics()
                .cross_shard_merges
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether no shard can still contribute a record relating to a
    /// component whose latest boundary window is `last`.
    fn component_closed(&self, last: TimeWindow) -> bool {
        let horizon = last.raw() as u64 + self.max_gap as u64;
        (0..self.map.num_shards()).all(|s| {
            self.done[s]
                || (self.clock[s].is_some_and(|c| c.raw() as u64 > horizon)
                    && self.boundary_floor[s].is_none_or(|f| f.raw() as u64 > horizon))
        })
    }

    /// Finalizes every pending component that can no longer grow.
    fn finalize_ready(&mut self) {
        // Group live slots by root, tracking each component's horizon.
        let mut roots: FxHashMap<usize, (TimeWindow, Vec<usize>)> = FxHashMap::default();
        for slot in 0..self.pending.len() {
            if self.pending[slot].is_none() {
                continue;
            }
            let root = self.find(slot);
            let last = self.pending[slot]
                .as_ref()
                .expect("checked live")
                .boundary_last;
            let entry = roots.entry(root).or_insert((last, Vec::new()));
            entry.0 = entry.0.max(last);
            entry.1.push(slot);
        }
        for (_, (last, slots)) in roots {
            if self.component_closed(last) {
                self.finalize_component(&slots);
            }
        }
    }

    /// Unconditionally finalizes everything pending (only valid once all
    /// shards are done).
    fn finalize_all(&mut self) {
        let mut roots: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        for slot in 0..self.pending.len() {
            if self.pending[slot].is_some() {
                let root = self.find(slot);
                roots.entry(root).or_default().push(slot);
            }
        }
        for (_, slots) in roots {
            self.finalize_component(&slots);
        }
    }

    /// Drains a component's slots into one reconciled event.
    fn finalize_component(&mut self, slots: &[usize]) {
        let mut records = Vec::new();
        for &slot in slots {
            let event = self.pending[slot].take().expect("slot still pending");
            for r in &event.records {
                if self.map.is_boundary(r.sensor) {
                    if let Some(list) = self.by_sensor.get_mut(&r.sensor) {
                        list.retain(|&(s, _)| s != slot);
                    }
                }
            }
            records.extend(event.records);
        }
        self.finalize_records(records);
    }

    /// The single-threaded epilogue every event reaches: trust filter,
    /// then micro-cluster admission into the live state.
    fn finalize_records(&mut self, mut records: Vec<AtypicalRecord>) {
        if records.len() < self.shared.params.min_event_records as usize {
            self.metrics()
                .events_discarded
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        records.sort_by_key(|r| (r.window, r.sensor));
        let event = AtypicalEvent::new(records);
        let mut live = self.shared.live.lock();
        let id = live.ids.next_id();
        let cluster = AtypicalCluster::from_event(id, &event);
        live.admit(
            cluster,
            self.shared.spec,
            &self.shared.partition,
            &self.shared.params,
        );
        self.metrics()
            .micro_clusters
            .fetch_add(1, Ordering::Relaxed);
        self.metrics()
            .macro_clusters
            .store(live.macros.len() as u64, Ordering::Relaxed);
        let istats = live.macros.stats();
        self.metrics()
            .integration_candidates_pruned
            .store(istats.candidates_pruned, Ordering::Relaxed);
        self.metrics()
            .integration_bound_skips
            .store(istats.bound_skips, Ordering::Relaxed);
        self.metrics()
            .integration_comparisons
            .store(istats.comparisons, Ordering::Relaxed);
        self.metrics()
            .integration_merges
            .store(istats.merges, Ordering::Relaxed);
        self.clusters_since_publish += 1;
    }

    /// Persists (and evicts) every live day that is provably complete.
    fn persist_complete_days(&mut self) {
        let Some(store) = &self.shared.store else {
            return;
        };
        let windows_per_day = self.shared.spec.windows_per_day() as u64;
        loop {
            let day = {
                let live = self.shared.live.lock();
                match live.micros_by_day.keys().next() {
                    Some(&d) => d,
                    None => return,
                }
            };
            let day_end = (day as u64 + 1) * windows_per_day - 1;
            let closed = (0..self.map.num_shards()).all(|s| {
                self.done[s]
                    || (self.clock[s]
                        .is_some_and(|c| c.raw() as u64 > day_end + self.max_gap as u64)
                        && self.open_floor[s].is_none_or(|f| f.raw() as u64 > day_end))
            }) && self
                .pending
                .iter()
                .flatten()
                .all(|p| p.min_window.raw() as u64 > day_end);
            if !closed {
                return;
            }
            let micros = {
                let mut live = self.shared.live.lock();
                live.evict_day(day).expect("day key observed under lock")
            };
            match store.save(atypical::store::ForestLevel::Day, day, &micros) {
                Ok(()) => {
                    let bytes = std::fs::metadata(
                        store.bucket_path(atypical::store::ForestLevel::Day, day),
                    )
                    .map(|m| m.len())
                    .unwrap_or(0);
                    self.metrics()
                        .days_persisted
                        .fetch_add(1, Ordering::Relaxed);
                    self.metrics()
                        .snapshot_bytes
                        .fetch_add(bytes, Ordering::Relaxed);
                    // A seal changes where readers must look for the day
                    // (store, not snapshot) and bumps `seal_epoch`:
                    // publish immediately so cache entries keyed to the
                    // old epoch die and no reader misses the day.
                    let mut live = self.shared.live.lock();
                    self.shared.publish_snapshot(&mut live);
                    self.clusters_since_publish = 0;
                    self.windows_since_publish = 0;
                }
                Err(e) => {
                    // Persistence is an optimization; keep serving from
                    // memory rather than killing the merger.
                    eprintln!("cps-monitor: failed to persist day {day}: {e}");
                    let mut live = self.shared.live.lock();
                    live.unevict_day(day, micros);
                    return;
                }
            }
        }
    }
}
