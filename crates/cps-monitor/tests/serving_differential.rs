//! The snapshot read path must never change an answer: at quiescence
//! (after `finish`, which joins the merger behind its final publication)
//! every query through a pinned [`ReadView`], through the cached
//! [`ServeHandle`], and through a cache-disabled handle is bit-identical
//! to the mutex-path oracle — with and without a snapshot store, and for
//! a service rebuilt by crash recovery before it ingests anything new.

use cps_monitor::{
    DurabilityConfig, FsyncPolicy, MonitorConfig, MonitorHandle, MonitorService, OverflowPolicy,
};
use cps_sim::{Scale, SimConfig, TrafficSim};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const DAYS: u32 = 3;

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("cps-serving-diff-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create test temp dir");
    dir
}

fn sim() -> TrafficSim {
    // Hot-region skew on: the differential guarantee must hold for the
    // skewed operational workload the serving bench replays, too.
    TrafficSim::new(SimConfig::new(Scale::Tiny, 7).with_hot_region(0.2, 0.5))
}

fn feed(sim: &TrafficSim) -> Vec<cps_core::AtypicalRecord> {
    let mut records: Vec<_> = (0..DAYS).flat_map(|d| sim.atypical_day(d)).collect();
    records.sort_unstable_by_key(|r| (r.window, r.sensor));
    assert!(!records.is_empty());
    records
}

fn base_config(sim: &TrafficSim) -> MonitorConfig {
    MonitorConfig {
        shards: 3,
        spec: sim.config().spec,
        overflow: OverflowPolicy::Block,
        ..MonitorConfig::default()
    }
}

/// Runs the feed to quiescence and returns the handle (the service itself
/// is consumed by `finish`).
fn run_to_quiescence(config: &MonitorConfig, sim: &TrafficSim) -> MonitorHandle {
    let network = Arc::new(sim.network().clone());
    let mut service = MonitorService::start(config, network).expect("service starts");
    let handle = service.handle();
    for record in feed(sim) {
        assert!(service.ingest(record).expect("healthy ingest"));
    }
    let metrics = service.finish();
    assert!(
        metrics.snapshots_published > 0,
        "the merger must publish: {metrics}"
    );
    handle
}

/// Every query of the surface, through all three read paths, over every
/// whole-day range of the feed. The cached queries run twice so the
/// second answer is served from the cache and must still match.
fn assert_paths_agree(handle: &MonitorHandle) {
    let serve = handle.serve();
    let view = handle.read_view();
    for first in 0..DAYS {
        for n in 1..=(DAYS - first) {
            let red = handle.red_regions(first, n);
            let guided = handle.query_guided(first, n).expect("mutex query");
            let significant = handle.significant_clusters(first, n).expect("mutex query");
            assert_eq!(view.red_regions(first, n), red, "red_regions({first},{n})");
            assert_eq!(
                view.query_guided(first, n).expect("view query"),
                guided,
                "query_guided({first},{n})"
            );
            assert_eq!(
                view.significant_clusters(first, n).expect("view query"),
                significant,
                "significant_clusters({first},{n})"
            );
            for round in 0..2 {
                assert_eq!(
                    *serve.red_regions(first, n),
                    red,
                    "cached red_regions({first},{n}) round {round}"
                );
                assert_eq!(
                    *serve.query_guided(first, n).expect("cached query"),
                    guided,
                    "cached query_guided({first},{n}) round {round}"
                );
                assert_eq!(
                    *serve.significant_clusters(first, n).expect("cached query"),
                    significant,
                    "cached significant_clusters({first},{n}) round {round}"
                );
            }
        }
    }
    for day in 0..DAYS {
        let micros = handle.micro_clusters_for_day(day).expect("mutex query");
        assert_eq!(
            *view.micro_clusters_for_day(day).expect("view query"),
            micros,
            "micro_clusters_for_day({day})"
        );
        assert_eq!(
            *serve.micro_clusters_for_day(day).expect("cached query"),
            micros,
            "cached micro_clusters_for_day({day})"
        );
    }
    let macros = handle.live_macro_clusters();
    assert_eq!(*view.live_macro_clusters(), macros, "live_macro_clusters");
    assert_eq!(*serve.live_macro_clusters(), macros);
}

/// All-live configuration: no store, every day answered from memory.
#[test]
fn snapshot_paths_match_mutex_at_quiescence() {
    let sim = sim();
    let handle = run_to_quiescence(&base_config(&sim), &sim);
    assert_paths_agree(&handle);
    let stats = handle.serve().cache_stats();
    assert!(stats.hits > 0, "second rounds must hit: {stats:?}");
}

/// With a snapshot store the early days seal mid-run: sealed days answer
/// from disk, live days from the snapshot — same answers either way, and
/// sealed-range cache entries are immutable (hits survive any epoch).
#[test]
fn snapshot_paths_match_mutex_with_sealed_days() {
    let sim = sim();
    let dir = fresh_dir("store");
    let config = MonitorConfig {
        snapshot_dir: Some(dir.clone()),
        ..base_config(&sim)
    };
    let handle = run_to_quiescence(&config, &sim);
    let view = handle.read_view();
    assert!(
        !view.snapshot().persisted_days.is_empty(),
        "a multi-day feed with a store must seal days"
    );
    assert!(view.seal_epoch() > 0);
    assert_paths_agree(&handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Disabling the cache changes performance, never answers: the handle
/// recomputes every query and its counters stay untouched.
#[test]
fn cache_disabled_serves_identical_results() {
    let sim = sim();
    let mut config = base_config(&sim);
    config.serving.cache = false;
    let handle = run_to_quiescence(&config, &sim);
    let serve = handle.serve();
    assert!(!serve.cache_enabled());
    assert_paths_agree(&handle);
    let stats = serve.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.stale, stats.entries),
        (0, 0, 0, 0),
        "a disabled cache must not count or hold anything"
    );
}

/// A coarse publication cadence only changes *when* snapshots appear;
/// the merger's final publication still makes quiescent answers exact.
#[test]
fn coarse_cadence_still_converges_at_quiescence() {
    let sim = sim();
    let mut config = base_config(&sim);
    config.serving.publish_every_clusters = 1_000;
    config.serving.publish_every_windows = 500;
    let handle = run_to_quiescence(&config, &sim);
    assert_paths_agree(&handle);
}

/// A crash-recovered service publishes its restored state as the initial
/// snapshot: the read view answers correctly before any new ingest.
#[test]
fn recovered_service_initial_view_matches_mutex() {
    let sim = sim();
    let network = Arc::new(sim.network().clone());
    let wal_dir = fresh_dir("wal");
    let config = MonitorConfig {
        durability: DurabilityConfig {
            wal_dir: Some(wal_dir.clone()),
            fsync: FsyncPolicy::Group,
            checkpoint_interval_records: 2_000,
            ..DurabilityConfig::default()
        },
        ..base_config(&sim)
    };
    {
        let mut service = MonitorService::start(&config, network.clone()).expect("service starts");
        for record in feed(&sim) {
            assert!(service.ingest(record).expect("healthy ingest"));
        }
        // Abrupt drop: no finish, no final checkpoint — the WAL replays.
    }
    let (service, report) = MonitorService::recover(&config, network).expect("recovery succeeds");
    assert!(report.replayed_entries > 0);
    let handle = service.handle();
    assert_paths_agree(&handle);
    drop(service);
    let _ = std::fs::remove_dir_all(&wal_dir);
}
