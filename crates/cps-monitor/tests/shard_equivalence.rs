//! Sharding must never change the output: the service's micro-cluster
//! multiset over a full simulated day equals the single-threaded
//! [`OnlineExtractor`]'s, for every shard count and any record order
//! within a window (the relation is insensitive to intra-window order).

use atypical::online::OnlineExtractor;
use atypical::AtypicalCluster;
use cps_core::{AtypicalRecord, Params, SensorId, Severity, TimeWindow, WindowSpec};
use cps_geo::RoadNetwork;
use cps_monitor::{MonitorConfig, MonitorService, OverflowPolicy};
use cps_sim::{Scale, SimConfig, TrafficSim};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

struct Fixture {
    network: Arc<RoadNetwork>,
    /// One Tiny day of atypical records, sorted by `(window, sensor)`.
    records: Vec<AtypicalRecord>,
    params: Params,
    spec: WindowSpec,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, 11));
        let mut records = sim.atypical_day(0);
        records.sort_by_key(|r| (r.window, r.sensor));
        assert!(
            !records.is_empty(),
            "fixture day generated no atypical records"
        );
        Fixture {
            network: Arc::new(sim.network().clone()),
            records,
            params: Params::paper_defaults(),
            spec: sim.config().spec,
        }
    })
}

/// Reorders records uniformly within each window (cross-window order must
/// stay monotone — both sides require it).
fn shuffled_within_windows(records: &[AtypicalRecord], seed: u64) -> Vec<AtypicalRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(records.len());
    let mut start = 0;
    while start < records.len() {
        let window = records[start].window;
        let end = start
            + records[start..]
                .iter()
                .take_while(|r| r.window == window)
                .count();
        let mut group: Vec<AtypicalRecord> = records[start..end].to_vec();
        group.shuffle(&mut rng);
        out.extend(group);
        start = end;
    }
    out
}

/// Order-free form of a cluster: sorted SF and TF entries. IDs are
/// assignment-order artifacts and excluded on purpose.
type Canonical = (Vec<(u32, Severity)>, Vec<(u32, Severity)>);

fn canonicalize(clusters: &[AtypicalCluster]) -> Vec<Canonical> {
    let mut out: Vec<Canonical> = clusters
        .iter()
        .map(|c| {
            let mut sf: Vec<(u32, Severity)> =
                c.sf.iter()
                    .map(|(s, sev): (SensorId, Severity)| (s.raw(), sev))
                    .collect();
            let mut tf: Vec<(u32, Severity)> =
                c.tf.iter()
                    .map(|(w, sev): (TimeWindow, Severity)| (w.raw(), sev))
                    .collect();
            sf.sort_unstable();
            tf.sort_unstable();
            (sf, tf)
        })
        .collect();
    out.sort();
    out
}

fn single_extractor_clusters(feed: &[AtypicalRecord]) -> Vec<AtypicalCluster> {
    let fx = fixture();
    let mut extractor = OnlineExtractor::new(&fx.network, fx.params, fx.spec);
    for &record in feed {
        extractor.push(record).expect("feed is window-monotone");
    }
    extractor.finish()
}

fn sharded_clusters(feed: &[AtypicalRecord], shards: usize) -> Vec<AtypicalCluster> {
    let fx = fixture();
    let config = MonitorConfig {
        shards,
        params: fx.params,
        spec: fx.spec,
        overflow: OverflowPolicy::Block,
        ..MonitorConfig::default()
    };
    let mut service = MonitorService::start(&config, fx.network.clone()).expect("service starts");
    let handle = service.handle();
    for &record in feed {
        assert!(service.ingest(record).expect("feed is window-monotone"));
    }
    let metrics = service.finish();
    assert_eq!(metrics.records_dropped, 0, "Block policy never drops");
    assert_eq!(metrics.records_ingested, feed.len() as u64);
    handle.live_micro_clusters()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_service_matches_single_extractor(
        shards in prop::sample::select(vec![1usize, 2, 4, 8]),
        shuffle_seed in 0u64..1_000_000,
    ) {
        let fx = fixture();
        let feed = shuffled_within_windows(&fx.records, shuffle_seed);
        let reference = canonicalize(&single_extractor_clusters(&feed));
        let sharded = canonicalize(&sharded_clusters(&feed, shards));
        prop_assert_eq!(sharded, reference);
    }
}

/// The fixture day is only useful if reconciliation actually happens:
/// assert the 4-shard run exercises boundary events and cross-shard merges.
#[test]
fn fixture_exercises_cross_shard_reconciliation() {
    let fx = fixture();
    let config = MonitorConfig {
        shards: 4,
        params: fx.params,
        spec: fx.spec,
        ..MonitorConfig::default()
    };
    let mut service = MonitorService::start(&config, fx.network.clone()).expect("service starts");
    let handle = service.handle();
    for &record in &fx.records {
        service.ingest(record).expect("feed is window-monotone");
    }
    let metrics = service.finish();
    assert!(metrics.boundary_events > 0, "no boundary events: {metrics}");
    assert!(
        metrics.cross_shard_merges > 0,
        "no cross-shard merges: {metrics}"
    );
    assert!(!handle.live_macro_clusters().is_empty());
}
