//! Seeded concurrent stress for the serving layer: reader threads race
//! live ingest, day sealing, and WAL checkpoints, and every snapshot they
//! pin must be internally consistent — never a torn epoch, never a
//! half-applied seal, exact severity conservation between the per-day `F`
//! vectors, the day buckets, and the macro fixpoint set.
//!
//! The invariants hold *within* any published snapshot because the merger
//! mutates all containers under one lock before publishing pointer
//! clones; a reader that ever observed a mix of two publications would
//! trip one of them. Severity is integer seconds, so the conservation
//! checks are exact, not tolerance-based.

use cps_core::Severity;
use cps_monitor::{
    DurabilityConfig, FsyncPolicy, MonitorConfig, MonitorHandle, MonitorService, OverflowPolicy,
    ReadView,
};
use cps_sim::{Scale, SimConfig, TrafficSim};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const DAYS: u32 = 3;
const READERS: usize = 4;

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "cps-serving-stress-{}-{tag}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create test temp dir");
    dir
}

fn total(f: &[Severity]) -> Severity {
    f.iter().fold(Severity::ZERO, |acc, &s| acc + s)
}

/// Checks one pinned view for internal consistency and returns its
/// `(epoch, seal_epoch)` for cross-pin monotonicity.
fn check_view(view: &ReadView) -> (u64, u64) {
    let snap = view.snapshot();

    // Seal bookkeeping is torn-publication bait: the persisted set, the
    // seal counter, and the day buckets all mutate together under the
    // merger's lock, so any mix of two publications shows up here.
    assert_eq!(
        snap.seal_epoch,
        snap.persisted_days.len() as u64,
        "seal epoch must count the persisted days"
    );
    for day in snap.persisted_days.iter() {
        assert!(
            !snap.micros_by_day.contains_key(day),
            "day {day} is both sealed and live"
        );
        assert!(
            snap.region_f_by_day.contains_key(day),
            "sealed day {day} lost its F vector"
        );
    }

    // Exact severity conservation, live days: the day bucket's micros and
    // the day's F vector are fed from the same admissions.
    for (day, micros) in &snap.micros_by_day {
        let bucket: Severity = micros
            .iter()
            .fold(Severity::ZERO, |acc, c| acc + c.severity());
        let f = snap
            .region_f_by_day
            .get(day)
            .unwrap_or_else(|| panic!("live day {day} has no F vector"));
        assert_eq!(
            total(f),
            bucket,
            "day {day}: F vector disagrees with its bucket"
        );
    }

    // Exact severity conservation, global: macro merges sum spatial
    // features, so the fixpoint set holds exactly the severity ever
    // admitted — which is exactly what the F vectors accumulated
    // (they survive day sealing; the macro set is never evicted).
    let macros_total: Severity = snap
        .macros
        .iter()
        .fold(Severity::ZERO, |acc, c| acc + c.severity());
    let f_total: Severity = snap
        .region_f_by_day
        .values()
        .fold(Severity::ZERO, |acc, f| acc + total(f));
    assert_eq!(
        macros_total, f_total,
        "macro fixpoint severity diverged from the admitted total"
    );

    // A pinned view is immutable: recomputing a query must reproduce it.
    let days_spanned = snap
        .micros_by_day
        .keys()
        .chain(snap.persisted_days.iter())
        .max()
        .map_or(1, |&d| d + 1);
    assert_eq!(
        view.red_regions(0, days_spanned),
        view.red_regions(0, days_spanned),
        "repeated reads of one pinned view must agree"
    );

    (view.epoch(), view.seal_epoch())
}

fn reader(handle: MonitorHandle, stop: Arc<AtomicBool>) -> u64 {
    let serve = handle.serve();
    let mut pins = 0u64;
    let mut last = (0u64, 0u64);
    while !stop.load(Ordering::SeqCst) || pins == 0 {
        let view = handle.read_view();
        let now = check_view(&view);
        assert!(
            now.0 >= last.0 && now.1 >= last.1,
            "epochs went backwards: {last:?} -> {now:?}"
        );
        last = now;
        // Exercise the cached path against the same racing state; the
        // guided pipeline's own invariant is order-insensitive.
        let day = (pins % u64::from(DAYS)) as u32;
        let guided = serve.query_guided(day, 1).expect("query");
        assert!(guided.input_clusters <= guided.candidate_clusters);
        pins += 1;
    }
    pins
}

/// Readers race ingest, day sealing (snapshot store on), group-commit WAL
/// appends, and periodic checkpoints for the whole feed; every pinned
/// snapshot must pass every invariant, and the final snapshot must agree
/// with the mutex oracle.
#[test]
fn concurrent_readers_see_only_consistent_snapshots() {
    let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, 13).with_hot_region(0.2, 0.5));
    let network = Arc::new(sim.network().clone());
    let mut records: Vec<_> = (0..DAYS).flat_map(|d| sim.atypical_day(d)).collect();
    records.sort_unstable_by_key(|r| (r.window, r.sensor));

    let snapshot_dir = fresh_dir("store");
    let wal_dir = fresh_dir("wal");
    let config = MonitorConfig {
        shards: 3,
        spec: sim.config().spec,
        overflow: OverflowPolicy::Block,
        snapshot_dir: Some(snapshot_dir.clone()),
        durability: DurabilityConfig {
            wal_dir: Some(wal_dir.clone()),
            fsync: FsyncPolicy::Group,
            checkpoint_interval_records: 1_000,
            ..DurabilityConfig::default()
        },
        ..MonitorConfig::default()
    };

    let mut service = MonitorService::start(&config, network).expect("service starts");
    let handle = service.handle();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let handle = handle.clone();
            let stop = stop.clone();
            std::thread::spawn(move || reader(handle, stop))
        })
        .collect();

    for record in records {
        assert!(service.ingest(record).expect("healthy ingest"));
    }
    let metrics = service.finish();
    stop.store(true, Ordering::SeqCst);
    for r in readers {
        assert!(r.join().expect("reader panicked") > 0);
    }

    assert!(metrics.snapshots_published > 0, "{metrics}");

    // Quiescent agreement: the last publication is the final state.
    let view = handle.read_view();
    check_view(&view);
    assert!(
        !view.snapshot().persisted_days.is_empty(),
        "the store must have sealed days mid-run"
    );
    assert_eq!(view.red_regions(0, DAYS), handle.red_regions(0, DAYS));
    assert_eq!(
        view.query_guided(0, DAYS).expect("query"),
        handle.query_guided(0, DAYS).expect("query")
    );
    assert_eq!(*view.live_macro_clusters(), handle.live_macro_clusters());

    let _ = std::fs::remove_dir_all(&snapshot_dir);
    let _ = std::fs::remove_dir_all(&wal_dir);
}
