//! Service-level behavior: ingest ordering, overflow accounting, snapshot
//! persistence, and the incrementally maintained red zones.

use atypical::redzone::RedZones;
use cps_core::{AtypicalRecord, RegionId, Severity, TimeWindow};
use cps_geo::grid::UniformGrid;
use cps_monitor::{MonitorConfig, MonitorService, OverflowPolicy};
use cps_sim::{Scale, SimConfig, TrafficSim};
use std::path::PathBuf;
use std::sync::Arc;

fn tiny_day() -> (TrafficSim, Vec<AtypicalRecord>) {
    let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, 11));
    let mut records = sim.atypical_day(0);
    records.sort_by_key(|r| (r.window, r.sensor));
    (sim, records)
}

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cps-monitor-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn out_of_order_ingest_is_rejected_and_service_survives() {
    let (sim, records) = tiny_day();
    let config = MonitorConfig {
        spec: sim.config().spec,
        ..MonitorConfig::default()
    };
    let mut service =
        MonitorService::start(&config, Arc::new(sim.network().clone())).expect("service starts");

    let later = records[records.len() / 2];
    let earlier = AtypicalRecord::new(
        records[0].sensor,
        TimeWindow::new(later.window.raw() - 1),
        records[0].severity,
    );
    service.ingest(later).expect("first record is accepted");
    let err = service
        .ingest(earlier)
        .expect_err("regressing window must be rejected");
    match err {
        cps_monitor::MonitorError::OutOfOrder { shard, cause } => {
            assert_eq!(shard, service.shard_map().shard_of(earlier.sensor));
            assert_eq!(cause.record, earlier);
            assert_eq!(cause.current_window, later.window);
        }
        other => panic!("wrong error variant: {other:?}"),
    }

    // The rejected record left the pipeline intact.
    for &r in &records[records.len() / 2..] {
        service.ingest(r).expect("in-order tail is accepted");
    }
    let metrics = service.finish();
    assert_eq!(
        metrics.records_ingested as usize,
        1 + records.len() - records.len() / 2
    );
    assert_eq!(metrics.records_dropped, 0);
}

#[test]
fn drop_policy_accounts_for_every_record() {
    let (sim, records) = tiny_day();
    let config = MonitorConfig {
        shards: 2,
        channel_capacity: 1,
        overflow: OverflowPolicy::Drop,
        spec: sim.config().spec,
        ..MonitorConfig::default()
    };
    let mut service =
        MonitorService::start(&config, Arc::new(sim.network().clone())).expect("service starts");
    let mut accepted = 0u64;
    for &r in &records {
        if service.ingest(r).expect("in-order feed") {
            accepted += 1;
        }
    }
    let metrics = service.finish();
    assert_eq!(metrics.records_ingested, accepted);
    assert_eq!(
        metrics.records_ingested + metrics.records_dropped,
        records.len() as u64
    );
}

#[test]
fn persisted_days_remain_queryable_and_red_zones_match_batch() {
    let (sim, records) = tiny_day();
    let root = tmp("persist");
    let config = MonitorConfig {
        shards: 4,
        snapshot_dir: Some(root.clone()),
        spec: sim.config().spec,
        ..MonitorConfig::default()
    };
    let network = Arc::new(sim.network().clone());
    let mut service = MonitorService::start(&config, network.clone()).expect("service starts");
    let handle = service.handle();
    for &r in &records {
        service.ingest(r).expect("in-order feed");
    }
    // Nudge the clock past the day so the final day bucket is provably
    // complete before the feed closes (finish would also do it).
    let metrics = service.finish();

    assert_eq!(metrics.days_persisted, 1, "{metrics}");
    assert!(metrics.snapshot_bytes > 0, "{metrics}");
    assert!(metrics.micro_clusters > 0, "{metrics}");

    // The persisted day left live memory but still answers queries.
    assert!(handle.live_micro_clusters().is_empty());
    let micros = handle.micro_clusters_for_day(0).expect("store read");
    assert_eq!(micros.len() as u64, metrics.micro_clusters);

    let result = handle.query_guided(0, 1).expect("guided query");
    assert_eq!(result.candidate_clusters as u64, metrics.micro_clusters);
    assert!(result.num_red_regions > 0);

    // The incrementally composed red zones equal the batch computation
    // over the same micro-clusters (Property 4: F is distributive).
    let partition = UniformGrid::over(&network, config.red_cell_miles).partition(&network);
    let range = config.spec.day_range(0, 1);
    let zones = RedZones::compute(
        &micros,
        &partition,
        &config.params,
        range,
        network.num_sensors() as u32,
    );
    let incremental = handle.red_regions(0, 1);
    let batch: Vec<(RegionId, Severity)> = (0..partition.num_regions())
        .map(RegionId::new)
        .filter(|&r| zones.is_red(r))
        .map(|r| (r, zones.f_value(r)))
        .collect();
    assert_eq!(incremental, batch);

    let _ = std::fs::remove_dir_all(&root);
}
