//! Order-free canonical form of a cluster set, for equivalence checks.
//!
//! Cluster IDs are assignment-order artifacts (different sharding or
//! recovery orders assign different IDs to the same cluster), so
//! equivalence is over the multiset of `(SF, TF)` contents: each cluster
//! becomes its sorted feature entries, and the set is sorted.

use atypical::AtypicalCluster;
use cps_core::{SensorId, Severity, TimeWindow};

/// One cluster stripped to its sorted SF and TF entries.
pub type Canonical = (Vec<(u32, Severity)>, Vec<(u32, Severity)>);

/// The order-free form of `clusters` — equal iff the cluster multisets
/// are equal up to IDs.
pub fn canonicalize(clusters: &[AtypicalCluster]) -> Vec<Canonical> {
    let mut out: Vec<Canonical> = clusters
        .iter()
        .map(|c| {
            let mut sf: Vec<(u32, Severity)> =
                c.sf.iter()
                    .map(|(s, sev): (SensorId, Severity)| (s.raw(), sev))
                    .collect();
            let mut tf: Vec<(u32, Severity)> =
                c.tf.iter()
                    .map(|(w, sev): (TimeWindow, Severity)| (w.raw(), sev))
                    .collect();
            sf.sort_unstable();
            tf.sort_unstable();
            (sf, tf)
        })
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atypical::feature::{SpatialFeature, TemporalFeature};
    use cps_core::ClusterId;

    fn cluster(id: u64, sensors: &[u32]) -> AtypicalCluster {
        let sf: SpatialFeature = sensors
            .iter()
            .map(|&s| (SensorId::new(s), Severity::from_secs(60)))
            .collect();
        let tf: TemporalFeature = sensors
            .iter()
            .map(|&s| (TimeWindow::new(s), Severity::from_secs(60)))
            .collect();
        AtypicalCluster::new(ClusterId::new(id), sf, tf)
    }

    #[test]
    fn ids_and_order_are_ignored() {
        let a = vec![cluster(1, &[1, 2]), cluster(2, &[5])];
        let b = vec![cluster(9, &[5]), cluster(4, &[1, 2])];
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn content_differences_are_detected() {
        let a = vec![cluster(1, &[1, 2])];
        let b = vec![cluster(1, &[1, 3])];
        assert_ne!(canonicalize(&a), canonicalize(&b));
    }
}
