//! A fault-injecting [`IoBackend`].
//!
//! [`FaultIo`] wraps the real filesystem, numbers every backend operation
//! (create, open, each write, sync, rename, …), and executes one
//! [`FaultPlan`]: at the N-th operation it can fail with an I/O error,
//! tear a write after a chosen byte count, crash (that op and every later
//! one fails), or add latency. Because the op sequence of a deterministic
//! workload is itself deterministic, a test can first run clean to record
//! the op log, then re-run the workload once per op with a fault planted
//! there — an exhaustive fault-point sweep, no sampling.
//!
//! ## Crash simulation
//!
//! Writes go through to the real files, so after the workload dies the
//! test calls [`FaultIo::simulate_crash`] to produce the post-power-cut
//! disk state: every tracked file is truncated to its *durable* length.
//! Under [`DurabilityMode::WriteThrough`] (default) every written byte is
//! durable immediately — the surviving state is exactly "all completed
//! ops, plus the torn prefix of a torn write". Under
//! [`DurabilityMode::CappedSync`] the backend *lies*: `sync` reports
//! success but only the first `cap` bytes of the file are actually
//! durable. Crashing after the commit rename then yields a visible but
//! truncated file — the rename-reordered-before-flush corruption that
//! atomic-write protocols must detect, not silently accept. Metadata
//! operations (rename, mkdir) are treated as durable once they return.

use cps_storage::{Io, IoBackend, IoRead, IoWrite};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// What happens at the planned operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an injected I/O error; later operations
    /// proceed (a transient EIO).
    Error,
    /// The operation does nothing and fails, and every later operation
    /// fails too: a power cut at an op boundary.
    Crash,
    /// For a write: the first `keep` bytes land, then the backend crashes.
    /// For any other op: equivalent to [`FaultKind::Crash`].
    Torn {
        /// Bytes of the write that reach the file before the crash.
        keep: usize,
    },
    /// The operation succeeds after a delay (a slow disk, not a failure).
    Latency {
        /// Delay in milliseconds.
        millis: u64,
    },
}

/// One planted fault: `kind` fires at the `at_op`-th backend operation
/// (0-based, in the order [`FaultIo`] numbers them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Operation index the fault fires at.
    pub at_op: u64,
    /// The fault to inject there.
    pub kind: FaultKind,
}

/// How written bytes become durable (what a crash preserves).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DurabilityMode {
    /// Every written byte is durable the moment the write returns.
    WriteThrough,
    /// `sync` reports success but only the first `cap` bytes of each file
    /// are actually durable — a lying fsync.
    CappedSync {
        /// Per-file durable-byte cap.
        cap: u64,
    },
}

/// The kind of one logged backend operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// File creation (truncating).
    Create,
    /// File open for reading.
    Open,
    /// One `read` call.
    Read,
    /// One logical write of `len` bytes.
    Write {
        /// Bytes in the write.
        len: usize,
    },
    /// An fsync.
    Sync,
    /// An atomic rename to `to`.
    Rename {
        /// Destination path.
        to: PathBuf,
    },
    /// Directory creation.
    CreateDirAll,
    /// File removal (WAL segment truncation after a checkpoint).
    Remove,
}

/// One entry of the op log.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// Operation index (the value a [`FaultPlan::at_op`] targets).
    pub index: u64,
    /// What the operation was.
    pub op: OpKind,
    /// File the operation touched.
    pub path: PathBuf,
}

#[derive(Default)]
struct FileState {
    written: u64,
    durable: u64,
}

struct State {
    next_op: u64,
    plan: Option<FaultPlan>,
    mode: DurabilityMode,
    crashed: bool,
    files: HashMap<PathBuf, FileState>,
    log: Vec<OpRecord>,
}

enum Decision {
    Proceed,
    Torn(usize),
}

fn injected(idx: u64, what: &str) -> io::Error {
    io::Error::other(format!("injected fault at op {idx}: {what}"))
}

fn offline() -> io::Error {
    io::Error::other("simulated crash: backend offline")
}

/// The fault-injecting backend. Cloning shares the op counter, plan, and
/// file-durability tracking.
#[derive(Clone)]
pub struct FaultIo {
    state: Arc<Mutex<State>>,
}

impl Default for FaultIo {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultIo {
    /// A backend with no planned fault and write-through durability.
    pub fn new() -> Self {
        Self {
            state: Arc::new(Mutex::new(State {
                next_op: 0,
                plan: None,
                mode: DurabilityMode::WriteThrough,
                crashed: false,
                files: HashMap::new(),
                log: Vec::new(),
            })),
        }
    }

    /// A backend that fires `plan`.
    pub fn with_plan(plan: FaultPlan) -> Self {
        let io = Self::new();
        io.set_plan(Some(plan));
        io
    }

    /// Replaces the planned fault.
    pub fn set_plan(&self, plan: Option<FaultPlan>) {
        self.state.lock().unwrap().plan = plan;
    }

    /// Sets the durability mode (see [`DurabilityMode`]).
    pub fn set_mode(&self, mode: DurabilityMode) {
        self.state.lock().unwrap().mode = mode;
    }

    /// An [`Io`] handle backed by this fault injector.
    pub fn io(&self) -> Io {
        Io::new(Arc::new(self.clone()))
    }

    /// Number of operations issued so far.
    pub fn op_count(&self) -> u64 {
        self.state.lock().unwrap().next_op
    }

    /// Copy of the op log (for enumerating fault points).
    pub fn ops(&self) -> Vec<OpRecord> {
        self.state.lock().unwrap().log.clone()
    }

    /// Whether a crash fault has fired (or [`Self::simulate_crash`] ran).
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Produces the post-crash disk state: every tracked file is truncated
    /// to its durable length, and the backend goes offline. Files the
    /// workload created but whose durable length is 0 are left as empty
    /// files (their directory entry may survive a real crash; readers must
    /// treat them as corrupt or absent either way).
    pub fn simulate_crash(&self) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        state.crashed = true;
        for (path, file) in &state.files {
            if path.exists() {
                let f = std::fs::OpenOptions::new().write(true).open(path)?;
                f.set_len(file.durable)?;
            }
        }
        Ok(())
    }

    /// Numbers the operation, logs it, and applies the plan. `Ok(Torn(k))`
    /// is only returned for write ops; for anything else a torn plan acts
    /// as a crash.
    fn gate(&self, op: OpKind, path: &Path) -> io::Result<Decision> {
        let is_write = matches!(op, OpKind::Write { .. });
        let mut state = self.state.lock().unwrap();
        if state.crashed {
            return Err(offline());
        }
        let idx = state.next_op;
        state.next_op += 1;
        state.log.push(OpRecord {
            index: idx,
            op,
            path: path.to_owned(),
        });
        let Some(plan) = state.plan else {
            return Ok(Decision::Proceed);
        };
        if plan.at_op != idx {
            return Ok(Decision::Proceed);
        }
        state.plan = None;
        match plan.kind {
            FaultKind::Error => Err(injected(idx, "I/O error")),
            FaultKind::Crash => {
                state.crashed = true;
                Err(injected(idx, "crash"))
            }
            FaultKind::Torn { keep } if is_write => {
                state.crashed = true;
                Ok(Decision::Torn(keep))
            }
            FaultKind::Torn { .. } => {
                state.crashed = true;
                Err(injected(idx, "crash (torn plan on non-write op)"))
            }
            FaultKind::Latency { millis } => {
                drop(state);
                std::thread::sleep(std::time::Duration::from_millis(millis));
                Ok(Decision::Proceed)
            }
        }
    }

    fn note_written(&self, path: &Path, n: u64) {
        let mut state = self.state.lock().unwrap();
        let mode = state.mode;
        let file = state.files.entry(path.to_owned()).or_default();
        file.written += n;
        if matches!(mode, DurabilityMode::WriteThrough) {
            file.durable = file.written;
        }
    }

    fn note_synced(&self, path: &Path) {
        let mut state = self.state.lock().unwrap();
        let mode = state.mode;
        let file = state.files.entry(path.to_owned()).or_default();
        file.durable = match mode {
            DurabilityMode::WriteThrough => file.written,
            DurabilityMode::CappedSync { cap } => file.written.min(cap),
        };
    }

    fn note_renamed(&self, from: &Path, to: &Path) {
        let mut state = self.state.lock().unwrap();
        if let Some(file) = state.files.remove(from) {
            state.files.insert(to.to_owned(), file);
        }
    }
}

struct FaultWrite {
    io: FaultIo,
    path: PathBuf,
    file: File,
}

impl Write for FaultWrite {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.io.gate(OpKind::Write { len: buf.len() }, &self.path)? {
            Decision::Proceed => {
                self.file.write_all(buf)?;
                self.io.note_written(&self.path, buf.len() as u64);
                Ok(buf.len())
            }
            Decision::Torn(keep) => {
                let keep = keep.min(buf.len());
                self.file.write_all(&buf[..keep])?;
                self.io.note_written(&self.path, keep as u64);
                Err(io::Error::other(format!(
                    "injected fault: write torn after {keep} of {} bytes",
                    buf.len()
                )))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        // Not a numbered op: flush has no durability effect here.
        self.file.flush()
    }
}

impl IoWrite for FaultWrite {
    fn sync(&mut self) -> io::Result<()> {
        self.io.gate(OpKind::Sync, &self.path)?;
        self.file.sync_all()?;
        self.io.note_synced(&self.path);
        Ok(())
    }
}

struct FaultRead {
    io: FaultIo,
    path: PathBuf,
    file: File,
}

impl Read for FaultRead {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.io.gate(OpKind::Read, &self.path)?;
        self.file.read(buf)
    }
}

impl IoRead for FaultRead {}

impl IoBackend for FaultIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn IoWrite>> {
        self.gate(OpKind::Create, path)?;
        let file = File::create(path)?;
        self.state
            .lock()
            .unwrap()
            .files
            .insert(path.to_owned(), FileState::default());
        Ok(Box::new(FaultWrite {
            io: self.clone(),
            path: path.to_owned(),
            file,
        }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn IoRead>> {
        self.gate(OpKind::Open, path)?;
        let file = File::open(path)?;
        Ok(Box::new(FaultRead {
            io: self.clone(),
            path: path.to_owned(),
            file,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate(OpKind::Rename { to: to.to_owned() }, from)?;
        std::fs::rename(from, to)?;
        self.note_renamed(from, to);
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.gate(OpKind::CreateDirAll, path)?;
        std::fs::create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gate(OpKind::Remove, path)?;
        std::fs::remove_file(path)?;
        // A removed file has no durable bytes to preserve at crash time.
        self.state.lock().unwrap().files.remove(path);
        Ok(())
    }
}

/// One planted fault case produced by a [`CrashPlan`].
pub struct CrashCase {
    /// Human-readable description for assertion messages.
    pub label: String,
    /// Operation index the fault fires at.
    pub at_op: u64,
    /// The recorded operation at that index.
    pub op: OpKind,
    /// For torn cases: how many bytes of the write survive.
    pub keep: Option<usize>,
    /// A fresh backend with the fault planted, ready to re-run the
    /// workload under.
    pub fault: FaultIo,
}

/// Enumerates fault points for a deterministic workload.
///
/// The op sequence of a deterministic workload is itself deterministic,
/// so a sweep records one clean run and then re-runs the workload once
/// per planted fault:
///
/// ```ignore
/// let plan = CrashPlan::record(|io| workload(io));
/// for case in plan.crash_cases() {
///     workload_expecting_failure(&case.fault.io());
///     case.fault.simulate_crash().unwrap();
///     check_recovery(&case.label);
/// }
/// ```
pub struct CrashPlan {
    ops: Vec<OpRecord>,
}

impl CrashPlan {
    /// Runs `workload` once under a clean fault backend and records its
    /// op log. The workload must succeed (panics otherwise): a sweep over
    /// a failing baseline proves nothing.
    pub fn record(workload: impl FnOnce(&Io)) -> Self {
        let fault = FaultIo::new();
        workload(&fault.io());
        assert!(
            !fault.crashed(),
            "CrashPlan baseline run crashed; sweep would be meaningless"
        );
        Self { ops: fault.ops() }
    }

    /// The recorded op log.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Number of recorded operations (= number of crash cases).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the workload performed no backend operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// One case per recorded op: a power cut at that op boundary (the op
    /// itself does not happen).
    pub fn crash_cases(&self) -> impl Iterator<Item = CrashCase> + '_ {
        self.ops.iter().map(|rec| CrashCase {
            label: format!(
                "crash at op {} ({:?} on {})",
                rec.index,
                rec.op,
                rec.path.display()
            ),
            at_op: rec.index,
            op: rec.op.clone(),
            keep: None,
            fault: FaultIo::with_plan(FaultPlan {
                at_op: rec.index,
                kind: FaultKind::Crash,
            }),
        })
    }

    /// One case per byte boundary of each write op matched by `select`:
    /// the write lands its first `keep` bytes, then the backend crashes.
    /// `keep` ranges over `0..len` (a full write is the clean case, not a
    /// fault). Pass `|_| true` to sweep every write.
    pub fn torn_cases<'a>(
        &'a self,
        select: impl Fn(&OpRecord) -> bool + 'a,
    ) -> impl Iterator<Item = CrashCase> + 'a {
        self.ops
            .iter()
            .filter_map(move |rec| match rec.op {
                OpKind::Write { len } if select(rec) => Some((rec, len)),
                _ => None,
            })
            .flat_map(|(rec, len)| {
                (0..len).map(move |keep| CrashCase {
                    label: format!(
                        "torn write at op {} after {keep}/{len} bytes ({})",
                        rec.index,
                        rec.path.display()
                    ),
                    at_op: rec.index,
                    op: rec.op.clone(),
                    keep: Some(keep),
                    fault: FaultIo::with_plan(FaultPlan {
                        at_op: rec.index,
                        kind: FaultKind::Torn { keep },
                    }),
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cps-faultio-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// The canonical workload: create, two writes, sync, rename.
    fn workload(io: &Io, dir: &Path) -> io::Result<()> {
        let staged = dir.join("file.tmp");
        let final_path = dir.join("file.bin");
        let mut w = io.create(&staged)?;
        w.write_all(b"aaaa")?;
        w.write_all(b"bbbb")?;
        w.sync()?;
        drop(w);
        io.rename(&staged, &final_path)
    }

    #[test]
    fn clean_run_logs_every_op() {
        let dir = tmp("log");
        let fault = FaultIo::new();
        workload(&fault.io(), &dir).unwrap();
        let ops: Vec<OpKind> = fault.ops().into_iter().map(|o| o.op).collect();
        assert_eq!(ops.len(), 5, "{ops:?}");
        assert!(matches!(ops[0], OpKind::Create));
        assert_eq!(ops[1], OpKind::Write { len: 4 });
        assert_eq!(ops[2], OpKind::Write { len: 4 });
        assert!(matches!(ops[3], OpKind::Sync));
        assert!(matches!(ops[4], OpKind::Rename { .. }));
        assert_eq!(std::fs::read(dir.join("file.bin")).unwrap(), b"aaaabbbb");
    }

    #[test]
    fn crash_fails_the_op_and_everything_after() {
        let dir = tmp("crash");
        let fault = FaultIo::with_plan(FaultPlan {
            at_op: 2,
            kind: FaultKind::Crash,
        });
        let err = workload(&fault.io(), &dir).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert!(fault.crashed());
        // Only the first write survives; the rename never happened.
        fault.simulate_crash().unwrap();
        assert!(!dir.join("file.bin").exists());
        assert_eq!(std::fs::read(dir.join("file.tmp")).unwrap(), b"aaaa");
        // Backend is offline now.
        assert!(fault.io().create(&dir.join("x")).is_err());
    }

    #[test]
    fn torn_write_keeps_a_prefix() {
        let dir = tmp("torn");
        let fault = FaultIo::with_plan(FaultPlan {
            at_op: 2,
            kind: FaultKind::Torn { keep: 1 },
        });
        let err = workload(&fault.io(), &dir).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        fault.simulate_crash().unwrap();
        assert_eq!(std::fs::read(dir.join("file.tmp")).unwrap(), b"aaaab");
    }

    #[test]
    fn transient_error_does_not_crash_the_backend() {
        let dir = tmp("eio");
        let fault = FaultIo::with_plan(FaultPlan {
            at_op: 1,
            kind: FaultKind::Error,
        });
        let io = fault.io();
        assert!(workload(&io, &dir).is_err());
        assert!(!fault.crashed());
        // A retry of the whole workload succeeds (plan already consumed).
        workload(&io, &dir).unwrap();
        assert_eq!(std::fs::read(dir.join("file.bin")).unwrap(), b"aaaabbbb");
    }

    #[test]
    fn lying_sync_loses_the_tail_across_rename() {
        let dir = tmp("lying");
        let fault = FaultIo::new();
        fault.set_mode(DurabilityMode::CappedSync { cap: 6 });
        workload(&fault.io(), &dir).unwrap();
        // The workload believes everything landed...
        assert_eq!(std::fs::read(dir.join("file.bin")).unwrap(), b"aaaabbbb");
        // ...but a crash reveals only 6 durable bytes behind the rename.
        fault.simulate_crash().unwrap();
        assert_eq!(std::fs::read(dir.join("file.bin")).unwrap(), b"aaaabb");
    }

    #[test]
    fn latency_delays_but_succeeds() {
        let dir = tmp("latency");
        let fault = FaultIo::with_plan(FaultPlan {
            at_op: 1,
            kind: FaultKind::Latency { millis: 30 },
        });
        let started = std::time::Instant::now();
        workload(&fault.io(), &dir).unwrap();
        assert!(started.elapsed() >= std::time::Duration::from_millis(30));
        assert_eq!(std::fs::read(dir.join("file.bin")).unwrap(), b"aaaabbbb");
    }
}
