//! Seeded-run harness: reproducibility for randomized fault tests.
//!
//! Every randomized fault/equivalence test derives its seed through
//! [`seed_for`] and runs its body under [`run_seeded`]. On failure the
//! harness prints the exact `CPS_FAULT_SEED=<seed>` line to re-run just
//! that case; setting the variable overrides every derived seed.

/// FNV-1a over `name` — a stable, dependency-free name → seed map.
pub fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The seed a test named `name` should use: the `CPS_FAULT_SEED`
/// environment variable if set (and parseable), otherwise FNV-1a of the
/// name — fixed across runs, different across tests.
pub fn seed_for(name: &str) -> u64 {
    match std::env::var("CPS_FAULT_SEED") {
        Ok(text) => text
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("CPS_FAULT_SEED is not a u64: {text:?}")),
        Err(_) => fnv1a(name),
    }
}

/// Guard that prints the reproduction line if the body panics.
struct SeedReport<'a> {
    name: &'a str,
    seed: u64,
}

impl Drop for SeedReport<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "{} failed; reproduce with CPS_FAULT_SEED={} cargo test -p cps-testkit {}",
                self.name, self.seed, self.name
            );
        }
    }
}

/// Runs `body` with the seed for `name` (see [`seed_for`]). If the body
/// panics, the failing seed is printed so the case can be replayed with
/// `CPS_FAULT_SEED=<seed>`.
pub fn run_seeded(name: &str, body: impl FnOnce(u64)) {
    let seed = seed_for(name);
    let guard = SeedReport { name, seed };
    body(seed);
    drop(guard);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(fnv1a("a"), fnv1a("a"));
        assert_ne!(fnv1a("a"), fnv1a("b"));
    }

    #[test]
    fn run_seeded_passes_the_derived_seed() {
        let mut got = None;
        run_seeded("run_seeded_passes_the_derived_seed", |seed| {
            got = Some(seed);
        });
        // No env override in the test environment by default; if one is
        // set, the body must have received exactly it.
        match std::env::var("CPS_FAULT_SEED") {
            Ok(text) => assert_eq!(got.unwrap(), text.trim().parse::<u64>().unwrap()),
            Err(_) => assert_eq!(got.unwrap(), fnv1a("run_seeded_passes_the_derived_seed")),
        }
    }
}
