//! # cps-testkit
//!
//! Deterministic fault-injection and crash-recovery harness for the
//! atypical-cps workspace.
//!
//! The paper's guarantees are algebraic — micro-cluster merge is
//! commutative and associative (Property 3), red-zone totals are
//! distributive (Properties 4–5) — so correctness under faults is
//! checkable *by equivalence*: any recovered or degraded run must produce
//! clusters identical (or a verified prefix/accounted difference) to a
//! clean batch run. This crate supplies the machinery:
//!
//! * [`fault`] — a [`cps_storage::IoBackend`] that injects EIO, torn
//!   writes, crashes, and latency at the N-th I/O operation, records an
//!   op log for exhaustive fault-point sweeps, and can simulate the
//!   on-disk state after a power cut (including a lying-`fsync` mode),
//! * [`seed`] — seeded-run harness: every randomized fault test prints
//!   `CPS_FAULT_SEED=<seed>` on failure and is reproducible from it,
//! * [`canonical`] — order-free cluster-set form for equivalence checks,
//! * [`fixtures`] — shared simulated deployments and temp directories.
//!
//! The injection seams live in the production crates (`cps-storage::Io`,
//! `cps_monitor::FaultConfig`); this crate only drives them, so the
//! tests exercise the real write and ingest paths byte for byte.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod canonical;
pub mod fault;
pub mod fixtures;
pub mod seed;

pub use canonical::{canonicalize, Canonical};
pub use fault::{
    CrashCase, CrashPlan, DurabilityMode, FaultIo, FaultKind, FaultPlan, OpKind, OpRecord,
};
pub use seed::{run_seeded, seed_for};
