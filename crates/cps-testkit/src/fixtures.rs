//! Shared fixtures: simulated deployments, random-but-valid clusters, and
//! temp directories.

use atypical::{AtypicalCluster, AtypicalEvent};
use cps_core::{AtypicalRecord, ClusterId, SensorId, Severity, TimeWindow};
use cps_sim::{Scale, SimConfig, TrafficSim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

/// One simulated Tiny-scale day: the deployment plus its atypical
/// records sorted by `(window, sensor)` — the feed order every online
/// component requires.
pub fn tiny_day(seed: u64) -> (TrafficSim, Vec<AtypicalRecord>) {
    let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, seed));
    let mut records = sim.atypical_day(0);
    records.sort_by_key(|r| (r.window, r.sensor));
    assert!(!records.is_empty(), "fixture day has no atypical records");
    (sim, records)
}

/// A fresh (removed-then-created) temp directory unique to this process
/// and `tag`.
pub fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cps-testkit-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

/// Builds a valid micro-cluster from a record set: records are sorted and
/// folded through [`AtypicalEvent`], so the SF/TF totals invariant the
/// decoder checks always holds.
pub fn cluster_from_records(id: u64, mut records: Vec<AtypicalRecord>) -> AtypicalCluster {
    assert!(!records.is_empty(), "clusters need at least one record");
    records.sort_by_key(|r| (r.window, r.sensor));
    AtypicalCluster::from_event(ClusterId::new(id), &AtypicalEvent::new(records))
}

/// A random valid cluster: 1..=`max_records` records over a bounded
/// sensor/window/severity space. Deterministic in `rng`.
pub fn random_cluster(rng: &mut StdRng, id: u64, max_records: usize) -> AtypicalCluster {
    let n = rng.gen_range(1..=max_records.max(1));
    let records = (0..n)
        .map(|_| {
            AtypicalRecord::new(
                SensorId::new(rng.gen_range(0..200) as u32),
                TimeWindow::new(rng.gen_range(0..500) as u32),
                Severity::from_secs(rng.gen_range(30..3600) as u64),
            )
        })
        .collect();
    cluster_from_records(id, records)
}

/// `n` random valid clusters from one seed.
pub fn random_clusters(seed: u64, n: usize, max_records: usize) -> Vec<AtypicalCluster> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| random_cluster(&mut rng, i as u64, max_records))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_clusters_are_valid_and_deterministic() {
        let a = random_clusters(7, 10, 6);
        let b = random_clusters(7, 10, 6);
        assert_eq!(a, b);
        for c in &a {
            assert_eq!(c.sf.total(), c.tf.total(), "SF/TF totals must agree");
            assert!(!c.sf.is_empty());
        }
        assert_ne!(
            crate::canonicalize(&a),
            crate::canonicalize(&random_clusters(8, 10, 6))
        );
    }
}
