//! Deterministic fault hooks in the sharded monitor: a killed shard
//! worker degrades the service instead of aborting it, drop bursts are
//! exactly accounted against single-extractor equivalence, and seeded
//! scheduling jitter never changes the output.

use atypical::online::OnlineExtractor;
use cps_core::{AtypicalRecord, Params, WindowSpec};
use cps_geo::RoadNetwork;
use cps_monitor::{
    DropBurst, FaultConfig, MonitorConfig, MonitorError, MonitorService, OverflowPolicy, WorkerKill,
};
use cps_testkit::fixtures::tiny_day;
use cps_testkit::{canonicalize, run_seeded};
use std::sync::Arc;

struct Fixture {
    network: Arc<RoadNetwork>,
    records: Vec<AtypicalRecord>,
    params: Params,
    spec: WindowSpec,
}

fn fixture() -> Fixture {
    let (sim, records) = tiny_day(11);
    Fixture {
        network: Arc::new(sim.network().clone()),
        records,
        params: Params::paper_defaults(),
        spec: sim.config().spec,
    }
}

fn config(fx: &Fixture, shards: usize, faults: FaultConfig) -> MonitorConfig {
    MonitorConfig {
        shards,
        params: fx.params,
        spec: fx.spec,
        overflow: OverflowPolicy::Block,
        faults,
        ..MonitorConfig::default()
    }
}

/// Satellite regression: a worker death must surface as a typed
/// [`MonitorError::WorkerDied`] on the affected shard only — the service
/// keeps ingesting other shards, stays queryable, and counts the death
/// exactly once.
#[test]
fn worker_death_degrades_instead_of_aborting() {
    let fx = fixture();
    let faults = FaultConfig {
        kill_worker: Some(WorkerKill {
            shard: 0,
            after_records: 3,
        }),
        ..FaultConfig::default()
    };
    let mut service =
        MonitorService::start(&config(&fx, 4, faults), fx.network.clone()).expect("service starts");
    let handle = service.handle();

    let mut accepted = 0u64;
    for &record in &fx.records {
        match service.ingest(record) {
            Ok(true) => accepted += 1,
            Ok(false) => panic!("Block policy must not drop"),
            // Whether ingest observes the death depends on channel
            // buffering; when it does, the error must name the shard.
            Err(MonitorError::WorkerDied { shard }) => {
                assert_eq!(shard, 0, "only the killed shard may die");
                let msg = MonitorError::WorkerDied { shard }.to_string();
                assert!(msg.contains("shard 0"), "error names the shard: {msg}");
            }
            Err(other) => panic!("unexpected ingest error: {other}"),
        }
    }
    assert!(accepted > 0, "live shards must keep ingesting");

    // finish() joins the merger, which deterministically flags any shard
    // that never reported Done — buffered sends cannot hide the death.
    let metrics = service.finish();
    assert_eq!(metrics.workers_dead, 1, "one death, counted once");
    assert_eq!(metrics.dead_shards, vec![0]);
    assert_eq!(metrics.records_ingested, accepted);
    assert_eq!(metrics.records_dropped, 0);
    // The handle outlives the degraded service and still answers queries.
    let _ = handle.live_micro_clusters();
    let _ = handle.red_regions(0, 1);
}

/// A drop burst is exactly accounted: the drop counter equals the burst
/// length, and the surviving output equals a single extractor that saw
/// the same feed with the same records replaced by clock advances.
#[test]
fn drop_burst_is_exactly_accounted_and_equivalent() {
    let fx = fixture();
    let n = fx.records.len() as u64;
    let burst = DropBurst {
        at_record: n / 3,
        len: 40,
    };
    assert!(
        burst.at_record + burst.len < n,
        "fixture day too small for the burst"
    );
    let faults = FaultConfig {
        drop_burst: Some(burst),
        ..FaultConfig::default()
    };
    let mut service =
        MonitorService::start(&config(&fx, 4, faults), fx.network.clone()).expect("service starts");
    let handle = service.handle();

    let mut dropped_indices = Vec::new();
    for (i, &record) in fx.records.iter().enumerate() {
        match service.ingest(record).expect("feed is window-monotone") {
            true => {}
            false => dropped_indices.push(i),
        }
    }
    let metrics = service.finish();
    assert_eq!(dropped_indices.len() as u64, burst.len);
    assert_eq!(metrics.records_dropped, burst.len);
    assert_eq!(
        metrics.records_ingested + metrics.records_dropped,
        n,
        "every record is either ingested or counted dropped"
    );

    // Reference: a single extractor fed the identical effective stream —
    // dropped records still advance the clock (the service broadcasts the
    // window advance before the drop hook fires).
    let mut extractor = OnlineExtractor::new(&fx.network, fx.params, fx.spec);
    let mut next_drop = dropped_indices.iter().copied().peekable();
    for (i, &record) in fx.records.iter().enumerate() {
        if next_drop.peek() == Some(&i) {
            next_drop.next();
            extractor.advance_to(record.window);
        } else {
            extractor.push(record).expect("feed is window-monotone");
        }
    }
    assert_eq!(
        canonicalize(&handle.live_micro_clusters()),
        canonicalize(&extractor.finish()),
        "drop burst must account for exactly the dropped records"
    );
}

/// Seeded scheduling jitter perturbs worker/merger interleavings but may
/// never change the reconciled output: with no drops the sharded result
/// equals the single-extractor run. Fails reproducibly from the printed
/// seed.
#[test]
fn jittered_schedule_is_equivalent_to_single_extractor() {
    run_seeded(
        "jittered_schedule_is_equivalent_to_single_extractor",
        |seed| {
            let fx = fixture();
            let faults = FaultConfig {
                jitter_seed: Some(seed),
                ..FaultConfig::default()
            };
            let mut service = MonitorService::start(&config(&fx, 4, faults), fx.network.clone())
                .expect("service starts");
            let handle = service.handle();
            for &record in &fx.records {
                assert!(service.ingest(record).expect("feed is window-monotone"));
            }
            let metrics = service.finish();
            assert_eq!(metrics.records_dropped, 0);
            assert_eq!(metrics.workers_dead, 0);

            let mut extractor = OnlineExtractor::new(&fx.network, fx.params, fx.spec);
            for &record in &fx.records {
                extractor.push(record).expect("feed is window-monotone");
            }
            assert_eq!(
                canonicalize(&handle.live_micro_clusters()),
                canonicalize(&extractor.finish()),
                "jitter changed the reconciled micro-clusters"
            );
        },
    );
}

/// After a worker death, in-order records for *live* shards keep being
/// accepted — the error is per-shard, not global.
#[test]
fn death_on_one_shard_does_not_poison_the_others() {
    let fx = fixture();

    // Kill the busiest shard — the fixture routes no records to some
    // shards, and a shard that never processes a record never dies.
    let probe = MonitorService::start(&config(&fx, 4, FaultConfig::default()), fx.network.clone())
        .expect("probe service starts");
    let shard_of: Vec<usize> = fx
        .records
        .iter()
        .map(|r| probe.shard_map().shard_of(r.sensor))
        .collect();
    probe.finish();
    let mut load = [0usize; 4];
    for &shard in &shard_of {
        load[shard] += 1;
    }
    let victim = (0..4).max_by_key(|&s| load[s]).unwrap();
    assert!(
        load.iter().filter(|&&n| n > 0).count() >= 2,
        "fixture must populate at least two shards: {load:?}"
    );

    let faults = FaultConfig {
        kill_worker: Some(WorkerKill {
            shard: victim,
            after_records: 0,
        }),
        ..FaultConfig::default()
    };
    let mut service =
        MonitorService::start(&config(&fx, 4, faults), fx.network.clone()).expect("service starts");
    let mut shards_accepted = [false; 4];
    for (&record, &shard) in fx.records.iter().zip(&shard_of) {
        match service.ingest(record) {
            Ok(true) => shards_accepted[shard] = true,
            Ok(false) => panic!("Block policy must not drop"),
            Err(MonitorError::WorkerDied { shard: dead }) => assert_eq!(dead, victim),
            Err(other) => panic!("unexpected ingest error: {other}"),
        }
    }
    for (shard, &accepted) in shards_accepted.iter().enumerate() {
        if shard != victim && load[shard] > 0 {
            assert!(accepted, "live shard {shard} stopped accepting records");
        }
    }
    let metrics = service.finish();
    assert_eq!(metrics.workers_dead, 1);
    assert_eq!(metrics.dead_shards, vec![victim]);
}
