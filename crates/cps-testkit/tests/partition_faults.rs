//! Fault injection through `PartitionWriter` / `PartitionReader`: EIO,
//! torn block writes, and latency at every operation of a multi-block
//! partition write, plus read-side errors. The invariant under any write
//! fault: reopening the file yields records that are a *clean prefix* of
//! the intended sequence, or a typed error — never silently wrong data.

use cps_core::{AtypicalRecord, SensorId, Severity, TimeWindow};
use cps_storage::format::{RecordKind, RECORDS_PER_BLOCK};
use cps_storage::{IoStats, PartitionReader, PartitionWriter};
use cps_testkit::fixtures::temp_dir;
use cps_testkit::{FaultIo, FaultKind, FaultPlan, OpKind};
use std::path::Path;

/// Two full blocks plus a partial trailer — block boundaries included.
fn records() -> Vec<AtypicalRecord> {
    (0..RECORDS_PER_BLOCK * 2 + 37)
        .map(|i| {
            AtypicalRecord::new(
                SensorId::new(i as u32),
                TimeWindow::new((i / 8) as u32),
                Severity::from_secs(30 + (i % 900) as u64),
            )
        })
        .collect()
}

fn write_workload(
    io: &cps_storage::Io,
    path: &Path,
    records: &[AtypicalRecord],
) -> cps_core::Result<u64> {
    let mut writer = PartitionWriter::create_with(path, RecordKind::Atypical, io)?;
    for r in records {
        writer.write_atypical(r)?;
    }
    writer.finish()
}

/// Reads back whatever survived; every successfully decoded record must
/// extend a clean prefix of `clean`.
fn assert_clean_prefix(path: &Path, clean: &[AtypicalRecord], context: &str) -> usize {
    let reader = match PartitionReader::open(path, IoStats::shared()) {
        Ok(reader) => reader,
        Err(_) => return 0, // typed failure at open — acceptable
    };
    let mut got = Vec::new();
    let mut failed = false;
    for item in reader.atypical_records() {
        match item {
            Ok(record) => got.push(record),
            Err(_) => {
                failed = true;
                break;
            }
        }
    }
    assert!(
        got.len() <= clean.len(),
        "{context}: read more records than were written"
    );
    assert_eq!(
        &got[..],
        &clean[..got.len()],
        "{context}: recovered records are not a clean prefix"
    );
    if !failed && got.len() < clean.len() {
        // A silently short read is fine only at block granularity: the
        // file simply ends after the last complete block.
        assert_eq!(
            got.len() % RECORDS_PER_BLOCK,
            0,
            "{context}: silent truncation inside a block"
        );
    }
    got.len()
}

#[test]
fn eio_at_every_op_leaves_a_readable_prefix() {
    let records = records();
    let dir = temp_dir("partition-eio");

    let recording = FaultIo::new();
    let clean_path = dir.join("clean.cps");
    write_workload(&recording.io(), &clean_path, &records).expect("clean write");
    let total_ops = recording.op_count();
    assert!(total_ops >= 8, "expected multi-block op sequence");

    for at_op in 0..total_ops {
        let path = dir.join(format!("eio-{at_op}.cps"));
        let fault = FaultIo::with_plan(FaultPlan {
            at_op,
            kind: FaultKind::Error,
        });
        write_workload(&fault.io(), &path, &records)
            .expect_err("an injected EIO must surface to the writer");
        if path.exists() {
            assert_clean_prefix(&path, &records, &format!("EIO at op {at_op}"));
        }
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_block_writes_never_yield_wrong_records() {
    let records = records();
    let dir = temp_dir("partition-torn");

    let recording = FaultIo::new();
    write_workload(&recording.io(), &dir.join("clean.cps"), &records).expect("clean write");
    let writes: Vec<(u64, usize)> = recording
        .ops()
        .iter()
        .filter_map(|op| match op.op {
            OpKind::Write { len } => Some((op.index, len)),
            _ => None,
        })
        .collect();

    for &(at_op, len) in &writes {
        // Block payloads are tens of KB; tearing at every byte is the
        // ForestStore sweep's job. Here every *write op* is torn at a set
        // of structurally interesting offsets (empty, header-splitting,
        // mid-payload, one-short).
        let keeps = [0usize, 1, 3, 7, len / 2, len.saturating_sub(1)];
        for &keep in keeps.iter().filter(|&&k| k < len) {
            let path = dir.join(format!("torn-{at_op}-{keep}.cps"));
            let fault = FaultIo::with_plan(FaultPlan {
                at_op,
                kind: FaultKind::Torn { keep },
            });
            write_workload(&fault.io(), &path, &records)
                .expect_err("a torn write must surface to the writer");
            fault.simulate_crash().expect("materialize crash state");
            if path.exists() {
                assert_clean_prefix(&path, &records, &format!("op {at_op} torn at {keep}"));
            }
            let _ = std::fs::remove_file(&path);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn latency_is_not_a_failure() {
    let records = records();
    let dir = temp_dir("partition-latency");
    let path = dir.join("slow.cps");
    let fault = FaultIo::with_plan(FaultPlan {
        at_op: 3,
        kind: FaultKind::Latency { millis: 25 },
    });
    let started = std::time::Instant::now();
    let n = write_workload(&fault.io(), &path, &records).expect("latency only delays");
    assert!(started.elapsed() >= std::time::Duration::from_millis(25));
    assert_eq!(n, records.len() as u64);
    let got = assert_clean_prefix(&path, &records, "latency");
    assert_eq!(got, records.len(), "all records survive a slow write");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_side_eio_at_every_op_is_surfaced() {
    let records = records();
    let dir = temp_dir("partition-read-eio");
    let path = dir.join("data.cps");
    write_workload(&FaultIo::new().io(), &path, &records).expect("clean write");

    // Record the clean read's op sequence.
    let recording = FaultIo::new();
    {
        let reader =
            PartitionReader::open_with(&path, IoStats::shared(), &recording.io()).expect("open");
        assert_eq!(
            reader.atypical_records().filter(|r| r.is_ok()).count(),
            records.len()
        );
    }
    let read_ops = recording.op_count();
    assert!(read_ops >= 2, "open + at least one read");

    for at_op in 0..read_ops {
        let fault = FaultIo::with_plan(FaultPlan {
            at_op,
            kind: FaultKind::Error,
        });
        match PartitionReader::open_with(&path, IoStats::shared(), &fault.io()) {
            Err(_) => {} // fault fired during open
            Ok(reader) => {
                let mut got = Vec::new();
                let mut saw_error = false;
                for item in reader.atypical_records() {
                    match item {
                        Ok(record) => got.push(record),
                        Err(_) => {
                            saw_error = true;
                            break;
                        }
                    }
                }
                assert_eq!(&got[..], &records[..got.len()], "EIO read at op {at_op}");
                assert!(
                    saw_error || got.len() == records.len(),
                    "EIO at op {at_op} vanished: {} records, no error",
                    got.len()
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
