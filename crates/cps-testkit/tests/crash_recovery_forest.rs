//! The tentpole crash-recovery sweep: kill a `ForestStore` day-bucket
//! write at *every* injected fault point (no sampled subset), reopen, and
//! assert the store either reports a typed corruption error or recovers a
//! prefix of day buckets whose clusters equal the clean run's prefix.
//!
//! Three exhaustive sweeps:
//!
//! * **Crash at every op boundary** — a power cut between any two backend
//!   operations of a multi-day workload.
//! * **Torn write at every byte** — the cut lands *inside* a write; every
//!   possible torn prefix of every write of a day-bucket file is tried.
//! * **Lying fsync at every durable length** — `sync` succeeds but only
//!   the first `cap` bytes are durable, so the crash happens *after* the
//!   commit rename: the visible file is truncated, and the store must
//!   report a typed `Corrupt` error, never silently return wrong clusters.

use atypical::store::{ForestLevel, ForestStore};
use atypical::AtypicalCluster;
use cps_core::CpsError;
use cps_storage::Io;
use cps_testkit::fixtures::{random_clusters, temp_dir};
use cps_testkit::{canonicalize, Canonical, CrashPlan, DurabilityMode, FaultIo, OpKind};
use std::path::Path;

const DAYS: u32 = 3;

fn day_buckets(seed: u64) -> Vec<Vec<AtypicalCluster>> {
    (0..DAYS)
        .map(|d| random_clusters(seed + u64::from(d), 5, 4))
        .collect()
}

/// The workload under test: open a store, persist each day in order —
/// exactly what the monitor's merger does as days complete.
fn run_workload(io: &Io, root: &Path, days: &[Vec<AtypicalCluster>]) -> cps_core::Result<()> {
    let store = ForestStore::open_with(root, io.clone())?;
    for (d, clusters) in days.iter().enumerate() {
        store.save(ForestLevel::Day, d as u32, clusters)?;
    }
    Ok(())
}

/// Reopens the crashed store with the real backend and checks the
/// recovery contract: every loadable day equals the clean run's bucket,
/// failures are typed, and the recovered days form a prefix (days were
/// written in order, so nothing later may survive an earlier loss).
fn check_recovery(root: &Path, clean: &[Vec<Canonical>], context: &str) {
    let store = ForestStore::open(root).expect("reopen after crash");
    let mut recovered = Vec::new();
    for day in 0..DAYS {
        match store.load(ForestLevel::Day, day) {
            Ok(Some(clusters)) => {
                assert_eq!(
                    canonicalize(&clusters),
                    clean[day as usize],
                    "{context}: day {day} recovered with wrong clusters"
                );
                recovered.push(true);
            }
            Ok(None) => recovered.push(false),
            Err(CpsError::Corrupt { .. }) => recovered.push(false),
            Err(other) => panic!("{context}: day {day}: untyped recovery failure {other:?}"),
        }
    }
    let first_lost = recovered.iter().position(|&r| !r).unwrap_or(DAYS as usize);
    assert!(
        recovered[first_lost..].iter().all(|&r| !r),
        "{context}: recovered days {recovered:?} are not a prefix"
    );
}

#[test]
fn crash_at_every_op_recovers_a_clean_prefix() {
    let days = day_buckets(0xC0);
    let clean: Vec<Vec<Canonical>> = days.iter().map(|c| canonicalize(c)).collect();

    let plan = CrashPlan::record(|io| {
        run_workload(io, &temp_dir("crash-clean"), &days).expect("clean run");
    });
    assert!(plan.len() > 10, "workload too small to be interesting");

    for case in plan.crash_cases() {
        let root = temp_dir("crash-case");
        run_workload(&case.fault.io(), &root, &days)
            .expect_err("a crash fault must abort the workload");
        case.fault
            .simulate_crash()
            .expect("materialize crash state");
        check_recovery(&root, &clean, &case.label);
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn torn_write_at_every_byte_recovers_a_clean_prefix() {
    let days = day_buckets(0xB0);
    let clean: Vec<Vec<Canonical>> = days.iter().map(|c| canonicalize(c)).collect();

    let plan = CrashPlan::record(|io| {
        run_workload(io, &temp_dir("torn-clean"), &days).expect("clean run");
    });
    let expected_cases: u64 = plan
        .ops()
        .iter()
        .filter_map(|op| match op.op {
            OpKind::Write { len } => Some(len as u64),
            _ => None,
        })
        .sum();
    assert!(expected_cases > 0);

    let mut cases = 0u64;
    for case in plan.torn_cases(|_| true) {
        let root = temp_dir("torn-case");
        run_workload(&case.fault.io(), &root, &days)
            .expect_err("a torn write must abort the workload");
        case.fault
            .simulate_crash()
            .expect("materialize crash state");
        check_recovery(&root, &clean, &case.label);
        let _ = std::fs::remove_dir_all(&root);
        cases += 1;
    }
    assert_eq!(
        cases, expected_cases,
        "sweep must cover every byte of every write"
    );
}

#[test]
fn lying_fsync_at_every_durable_length_is_detected() {
    // One day bucket, written through a backend whose fsync lies: after
    // the crash the *visible* (already renamed) file holds only `cap`
    // bytes. Every cap short of the full file must surface as a typed
    // Corrupt error on load — this is the only sweep where a corrupt
    // visible file is reachable at all, since honest-sync crashes always
    // leave buckets absent-or-complete (the two sweeps above).
    let clusters = random_clusters(0xF5, 5, 4);
    let clean = canonicalize(&clusters);

    let probe_root = temp_dir("lying-clean");
    run_workload(
        &FaultIo::new().io(),
        &probe_root,
        std::slice::from_ref(&clusters),
    )
    .expect("clean run");
    let bucket = ForestStore::open(&probe_root)
        .expect("reopen")
        .bucket_path(ForestLevel::Day, 0);
    let full_len = std::fs::metadata(&bucket).expect("bucket written").len();
    assert!(full_len > 12, "bucket must have header + payload");

    for cap in 0..=full_len {
        let root = temp_dir("lying-case");
        let fault = FaultIo::new();
        fault.set_mode(DurabilityMode::CappedSync { cap });
        run_workload(&fault.io(), &root, std::slice::from_ref(&clusters))
            .expect("the lying backend reports success");
        fault.simulate_crash().expect("materialize crash state");

        let store = ForestStore::open(&root).expect("reopen after crash");
        match store.load(ForestLevel::Day, 0) {
            Ok(Some(recovered)) => {
                assert_eq!(
                    cap, full_len,
                    "cap {cap} < {full_len} must not load successfully"
                );
                assert_eq!(canonicalize(&recovered), clean);
            }
            Err(CpsError::Corrupt { .. }) => {
                assert_ne!(cap, full_len, "fully durable bucket must load");
            }
            Ok(None) => panic!("cap {cap}: renamed bucket cannot be absent"),
            Err(other) => panic!("cap {cap}: untyped failure {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
