//! Cross-crate bit-identity matrix for the deterministic parallel
//! engine: the cube and the monitor's forest snapshots must be
//! indistinguishable at every `parallelism` setting.
//!
//! The in-crate differential suites (`atypical/tests/par_differential`,
//! `cps-cube` unit tests) prove each parallel path against its own
//! sequential oracle; this suite checks the *integration* surfaces a
//! deployment actually touches — simulated record feeds, the sharded
//! monitor, cuboid materialization — across thread counts {1, 2, 3, 8}.
//! Seeded through `cps-testkit`; rerun failures with
//! `CPS_FAULT_SEED=<seed>`.

use atypical::AtypicalCluster;
use cps_core::measure::CountAndTotal;
use cps_core::Params;
use cps_cube::{CellKey, SpatioTemporalCube, TemporalLevel};
use cps_geo::grid::RegionHierarchy;
use cps_monitor::{FaultConfig, MonitorConfig, MonitorService, OverflowPolicy};
use cps_sim::{Scale, SimConfig, TrafficSim};
use cps_testkit::run_seeded;

/// Parallelism settings compared against the sequential baseline.
/// `CPS_PAR_THREADS=n,n,...` pins the sweep (used by `scripts/ci.sh`).
fn thread_matrix() -> Vec<usize> {
    match std::env::var("CPS_PAR_THREADS") {
        Ok(text) => text
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("CPS_PAR_THREADS is not a thread list: {text:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 3, 8],
    }
}

#[test]
fn cube_cuboids_identical_at_every_parallelism() {
    run_seeded("cube_cuboids_identical_at_every_parallelism", |seed| {
        let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, seed));
        let hierarchy = RegionHierarchy::standard(sim.network(), 3.0, 3);
        let spec = sim.config().spec;
        let build = |threads: usize| {
            let mut cube =
                SpatioTemporalCube::new(hierarchy.clone(), spec).with_parallelism(threads);
            for day in 0..3 {
                for record in sim.atypical_day(day) {
                    cube.add_atypical(&record);
                }
            }
            // Dump every cuboid in raw iteration order — the parallel
            // roll-up promises identical *insertion* order, so even the
            // hash-map walk must not differ.
            let mut dump: Vec<Vec<(CellKey, CountAndTotal)>> = Vec::new();
            for s_level in 0..3 {
                // The cube's base grain is the hour — Window would drill
                // below storage.
                for t_level in [
                    TemporalLevel::Hour,
                    TemporalLevel::Day,
                    TemporalLevel::Week,
                    TemporalLevel::Month,
                ] {
                    dump.push(
                        cube.cuboid(s_level, t_level)
                            .iter()
                            .map(|(k, m)| (*k, *m))
                            .collect(),
                    );
                }
            }
            dump
        };
        let sequential = build(1);
        assert!(
            sequential.iter().any(|c| !c.is_empty()),
            "seed {seed}: fixture produced an empty cube"
        );
        for threads in thread_matrix() {
            assert_eq!(build(threads), sequential, "seed {seed}, {threads} threads");
        }
    });
}

#[test]
fn monitor_forest_snapshot_identical_at_every_parallelism() {
    run_seeded(
        "monitor_forest_snapshot_identical_at_every_parallelism",
        |seed| {
            let sim = TrafficSim::new(SimConfig::new(Scale::Tiny, seed));
            let network = std::sync::Arc::new(sim.network().clone());
            let n_days = 8u32;
            let mut records: Vec<_> = (0..n_days).flat_map(|d| sim.atypical_day(d)).collect();
            records.sort_by_key(|r| (r.window, r.sensor));

            // The snapshot materializes week roll-ups with the service's
            // configured parallelism; everything observable — leaves,
            // weeks, stats, the id-generator position — must match the
            // sequential service bit-for-bit.
            // One shard: multi-shard merge arrival order is OS-timing
            // dependent, so shard outputs are only *canonically* equal
            // run-to-run (see `monitor_faults`). Bit-identity across
            // `parallelism` is a claim about the forest engine, which
            // needs a bit-stable micro-cluster feed to be observable.
            let snapshot = |threads: usize| {
                let config = MonitorConfig {
                    shards: 1,
                    params: Params::paper_defaults().with_parallelism(threads),
                    spec: sim.config().spec,
                    overflow: OverflowPolicy::Block,
                    faults: FaultConfig::default(),
                    ..MonitorConfig::default()
                };
                let mut service =
                    MonitorService::start(&config, network.clone()).expect("service starts");
                let handle = service.handle();
                for &record in &records {
                    service.ingest(record).expect("ingest");
                }
                // Join the shard workers first: reading mid-flight would
                // race the extractors, not test the parallel engine.
                let metrics = service.finish();
                assert!(metrics.micro_clusters > 0, "seed {seed}: empty feed");
                let mut forest = handle
                    .forest_snapshot(0, n_days)
                    .expect("snapshot materializes");
                let days: Vec<Vec<AtypicalCluster>> =
                    (0..n_days).map(|d| forest.day(d).to_vec()).collect();
                let weeks: Vec<Vec<AtypicalCluster>> =
                    (0..n_days / 7).map(|w| forest.week(w).to_vec()).collect();
                let stats = forest.integration_stats();
                let peek = forest.id_gen().peek();
                (days, weeks, stats, peek)
            };

            let sequential = snapshot(1);
            assert!(
                sequential.0.iter().any(|d| !d.is_empty()),
                "seed {seed}: no day leaves in fixture"
            );
            for threads in thread_matrix() {
                assert_eq!(
                    snapshot(threads),
                    sequential,
                    "seed {seed}: snapshot diverged at parallelism {threads}"
                );
            }
        },
    );
}
