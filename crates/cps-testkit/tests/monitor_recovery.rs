//! The tentpole crash-equivalence sweeps for the durable monitor: kill
//! the whole service at *every* backend operation boundary (WAL appends,
//! group-commit fsyncs, segment rotations, checkpoint writes, segment
//! truncations), recover from checkpoint + WAL replay, resume the feed at
//! [`RecoveryReport::resume_from`], and require the final state to equal
//! an uninterrupted run's — bit-identical for one shard, as canonical
//! multisets across shards (where merger arrival order is scheduling-
//! dependent by design).
//!
//! Also covered: torn WAL frames at every byte boundary of representative
//! appends, worker kill + supervised respawn with zero record loss,
//! respawn-budget exhaustion surfacing the typed
//! [`MonitorError::ShardFailed`], restart after a clean shutdown, and the
//! `start_with` guard against silently shadowing durable state.

use atypical::online::OnlineExtractor;
use atypical::AtypicalCluster;
use cps_core::{AtypicalRecord, Params, WindowSpec};
use cps_geo::RoadNetwork;
use cps_monitor::{
    DurabilityConfig, FaultConfig, FsyncPolicy, MonitorConfig, MonitorError, MonitorService,
    OverflowPolicy, WorkerKill,
};
use cps_storage::Io;
use cps_testkit::fixtures::{temp_dir, tiny_day};
use cps_testkit::{canonicalize, Canonical, CrashPlan, OpKind};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Sweeps re-run the whole service once per fault point; a bounded feed
/// keeps the op log (and so the sweep) small enough to stay exhaustive.
const FEED_LEN: usize = 120;

struct Fixture {
    network: Arc<RoadNetwork>,
    records: Vec<AtypicalRecord>,
    params: Params,
    spec: WindowSpec,
}

fn fixture() -> Fixture {
    let (sim, mut records) = tiny_day(11);
    records.truncate(FEED_LEN);
    assert!(records.len() >= 100, "fixture day too small for the sweeps");
    Fixture {
        network: Arc::new(sim.network().clone()),
        records,
        params: Params::paper_defaults(),
        spec: sim.config().spec,
    }
}

fn config(fx: &Fixture, shards: usize, wal_dir: &Path, checkpoint_interval: u64) -> MonitorConfig {
    MonitorConfig {
        shards,
        params: fx.params,
        spec: fx.spec,
        overflow: OverflowPolicy::Block,
        durability: DurabilityConfig {
            wal_dir: Some(wal_dir.to_path_buf()),
            fsync: FsyncPolicy::Group,
            group_commit_records: 4,
            checkpoint_interval_records: checkpoint_interval,
            respawn_budget: 0,
            // The minimum: frames are a few dozen bytes, so rotations
            // actually happen inside the bounded feed.
            segment_bytes: 1024,
        },
        ..MonitorConfig::default()
    }
}

/// The pipeline state the sweeps compare: live micro-clusters in
/// day-then-finalization order and the live macro fixpoint set in
/// admission order. For one shard both are deterministic, so equality is
/// bit-identity of the full `⟨ID, SF, TF⟩` clusters.
type Fingerprint = (Vec<AtypicalCluster>, Vec<AtypicalCluster>);

/// Feeds records in order until the first ingest error; returns the index
/// of the record the error rejected (`None` = whole feed accepted).
fn feed(service: &mut MonitorService, records: &[AtypicalRecord]) -> Option<usize> {
    for (i, &record) in records.iter().enumerate() {
        match service.ingest(record) {
            Ok(true) => {}
            Ok(false) => panic!("Block policy must not drop"),
            Err(_) => return Some(i),
        }
    }
    None
}

/// One full service lifetime under `io`: start, feed until the first
/// error, finish. Returns where the feed stopped and the final state;
/// `None` if the crash hit `start_with` itself (nothing ran).
fn try_run_service(
    io: &Io,
    fx: &Fixture,
    config: &MonitorConfig,
) -> Option<(Option<usize>, Fingerprint)> {
    let mut service = MonitorService::start_with(config, fx.network.clone(), io.clone()).ok()?;
    let handle = service.handle();
    let stopped = feed(&mut service, &fx.records);
    service.finish();
    let fp = (handle.live_micro_clusters(), handle.live_macro_clusters());
    Some((stopped, fp))
}

/// [`try_run_service`] for runs whose start must succeed.
fn run_service(io: &Io, fx: &Fixture, config: &MonitorConfig) -> (Option<usize>, Fingerprint) {
    try_run_service(io, fx, config).expect("service starts")
}

/// Recovers from the crashed state under the real backend, resumes the
/// feed at the reported position, and returns the final state.
fn recover_and_resume(fx: &Fixture, config: &MonitorConfig) -> Fingerprint {
    let (mut service, report) =
        MonitorService::recover(config, fx.network.clone()).expect("recovery succeeds");
    let handle = service.handle();
    let resume = report.resume_from as usize;
    assert!(
        resume <= fx.records.len(),
        "resume_from {resume} exceeds the feed"
    );
    assert!(
        feed(&mut service, &fx.records[resume..]).is_none(),
        "resumed feed must be accepted in full"
    );
    let metrics = service.finish();
    assert_eq!(metrics.recoveries, 1);
    (handle.live_micro_clusters(), handle.live_macro_clusters())
}

fn canonical(fp: &Fingerprint) -> Vec<Canonical> {
    canonicalize(&fp.0)
}

/// Runs the full crash sweep for one config shape: record the clean op
/// log, then for every op boundary crash there, recover, resume, and
/// compare against the uninterrupted run through `check`.
fn sweep_every_op(
    fx: &Fixture,
    shards: usize,
    checkpoint_interval: u64,
    tag: &str,
    check: impl Fn(&Fingerprint, &Fingerprint, &str),
) {
    let mut clean = None;
    let plan = CrashPlan::record(|io| {
        let wal_dir = temp_dir(&format!("{tag}-clean"));
        let cfg = config(fx, shards, &wal_dir, checkpoint_interval);
        let (stopped, fp) = run_service(io, fx, &cfg);
        assert_eq!(stopped, None, "baseline run must accept the whole feed");
        clean = Some(fp);
    });
    let clean = clean.unwrap();
    assert!(
        plan.len() > 100,
        "op log too small to be interesting: {} ops",
        plan.len()
    );
    if checkpoint_interval > 0 {
        assert!(
            plan.ops().iter().any(|op| matches!(op.op, OpKind::Remove)),
            "checkpointing must truncate dead segments in the baseline"
        );
    }

    for case in plan.crash_cases() {
        let wal_dir = temp_dir(&format!("{tag}-case"));
        let cfg = config(fx, shards, &wal_dir, checkpoint_interval);
        let io = case.fault.io();
        // A crash during `start_with` leaves nothing running; ingest may
        // also swallow the fault entirely (checkpoint failures only
        // postpone truncation). The crash state is materialized either
        // way and recovery must cope.
        let _ = try_run_service(&io, fx, &cfg);
        case.fault
            .simulate_crash()
            .expect("materialize crash state");
        let recovered = recover_and_resume(fx, &cfg);
        check(&recovered, &clean, &case.label);
        let _ = std::fs::remove_dir_all(&wal_dir);
    }
}

/// One shard: every message reaches the merger in a deterministic order,
/// so a crash planted at every op boundary must recover to the
/// bit-identical state — same clusters, same IDs, same admission order.
#[test]
fn crash_at_every_op_is_bit_identical_for_one_shard() {
    let fx = fixture();
    sweep_every_op(&fx, 1, 30, "rec1", |recovered, clean, label| {
        assert_eq!(recovered, clean, "{label}: recovered state diverged");
    });
}

/// Four shards with checkpoints and segment truncation in the loop:
/// merger arrival order is scheduling-dependent, so equivalence is the
/// canonical micro-cluster multiset.
#[test]
fn crash_at_every_op_is_canonically_equal_across_shards() {
    let fx = fixture();
    let mut checked = 0u32;
    sweep_every_op(&fx, 4, 25, "rec4", |recovered, clean, label| {
        assert_eq!(
            canonical(recovered),
            canonical(clean),
            "{label}: recovered micro-clusters diverged"
        );
    });
    let _ = &mut checked;
}

/// A WAL-enabled run must produce exactly the state a WAL-less run does —
/// durability is an overlay, not a semantic change.
#[test]
fn wal_overlay_does_not_change_the_output() {
    let fx = fixture();
    let wal_dir = temp_dir("overlay");
    let cfg = config(&fx, 1, &wal_dir, 30);
    let (stopped, with_wal) = run_service(&Io::real(), &fx, &cfg);
    assert_eq!(stopped, None);

    let plain = MonitorConfig {
        shards: 1,
        params: fx.params,
        spec: fx.spec,
        overflow: OverflowPolicy::Block,
        ..MonitorConfig::default()
    };
    let (stopped, without_wal) = run_service(&Io::real(), &fx, &plain);
    assert_eq!(stopped, None);
    assert_eq!(with_wal, without_wal);
}

/// Torn WAL frames: the power cut lands *inside* an append. Every byte
/// boundary of three representative frames (early, mid-feed, and late —
/// the last is past checkpoints) must recover to the bit-identical state:
/// the torn frame is repaired away as a clean prefix and its record
/// re-fed via `resume_from`.
#[test]
fn torn_frame_at_every_byte_recovers_bit_identically() {
    let fx = fixture();
    let mut clean = None;
    let plan = CrashPlan::record(|io| {
        let wal_dir = temp_dir("torn-clean");
        let cfg = config(&fx, 1, &wal_dir, 30);
        let (stopped, fp) = run_service(io, &fx, &cfg);
        assert_eq!(stopped, None);
        clean = Some(fp);
    });
    let clean = clean.unwrap();

    // Representative frames: appends (writes on segment files, past the
    // small segment header) spread across the feed.
    let appends: Vec<u64> = plan
        .ops()
        .iter()
        .filter(|rec| {
            matches!(rec.op, OpKind::Write { len } if len > 20)
                && rec.path.to_string_lossy().contains("shard-0")
        })
        .map(|rec| rec.index)
        .collect();
    assert!(appends.len() > 50, "too few appends: {}", appends.len());
    let picks = [
        appends[1],
        appends[appends.len() / 2],
        appends[appends.len() - 2],
    ];

    let mut cases = 0u32;
    for case in plan.torn_cases(|rec| picks.contains(&rec.index)) {
        let wal_dir = temp_dir("torn-case");
        let cfg = config(&fx, 1, &wal_dir, 30);
        let io = case.fault.io();
        let (stopped, _) = run_service(&io, &fx, &cfg);
        assert!(
            stopped.is_some(),
            "{}: a torn append must fail ingest",
            case.label
        );
        case.fault
            .simulate_crash()
            .expect("materialize crash state");
        let recovered = recover_and_resume(&fx, &cfg);
        assert_eq!(recovered, clean, "{}: recovered state diverged", case.label);
        let _ = std::fs::remove_dir_all(&wal_dir);
        cases += 1;
    }
    assert!(cases > 60, "torn sweep too small: {cases} cases");
}

/// Worker kill under supervision: every death is respawned from
/// checkpoint + WAL replay, the failed send retried, and zero records
/// lost — the whole feed is accepted and the canonical output equals a
/// single extractor over the same records.
#[test]
fn killed_workers_respawn_with_zero_record_loss() {
    let fx = fixture();
    let wal_dir = temp_dir("respawn");
    let mut cfg = config(&fx, 4, &wal_dir, 30);
    cfg.durability.respawn_budget = 8;
    // Capacity 1 bounds the records parked in a dead worker's channel and
    // forces the next send to observe the death.
    cfg.channel_capacity = 1;
    let probe = MonitorService::start(
        &MonitorConfig {
            shards: 4,
            params: fx.params,
            spec: fx.spec,
            ..MonitorConfig::default()
        },
        fx.network.clone(),
    )
    .expect("probe starts");
    let mut load = [0usize; 4];
    for r in &fx.records {
        load[probe.shard_map().shard_of(r.sensor)] += 1;
    }
    probe.finish();
    let victim = (0..4).max_by_key(|&s| load[s]).unwrap();
    assert!(load[victim] > 40, "victim shard too quiet: {load:?}");
    cfg.faults = FaultConfig {
        kill_worker: Some(WorkerKill {
            shard: victim,
            after_records: 20,
        }),
        ..FaultConfig::default()
    };

    let mut service = MonitorService::start(&cfg, fx.network.clone()).expect("service starts");
    let handle = service.handle();
    assert!(
        feed(&mut service, &fx.records).is_none(),
        "supervision must hide every death from ingest"
    );
    let metrics = service.finish();
    assert!(metrics.respawns >= 1, "the kill hook must have fired");
    assert_eq!(metrics.permanently_failed, 0);
    assert_eq!(metrics.records_ingested, fx.records.len() as u64);
    assert_eq!(metrics.records_dropped, 0);
    assert_eq!(
        metrics.workers_dead, metrics.respawns,
        "each counted death was respawned"
    );

    let mut extractor = OnlineExtractor::new(&fx.network, fx.params, fx.spec);
    for &record in &fx.records {
        extractor.push(record).expect("feed is window-monotone");
    }
    assert_eq!(
        canonicalize(&handle.live_micro_clusters()),
        canonicalize(&extractor.finish()),
        "respawned shards lost or duplicated records"
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Budget exhaustion: with `after_records = 0` every incarnation dies on
/// its first record, so a budget of 1 is spent on the second death and
/// the shard surfaces the typed [`MonitorError::ShardFailed`] from then
/// on, counted once in `permanently_failed`.
#[test]
fn respawn_budget_exhaustion_is_typed_and_counted_once() {
    let fx = fixture();
    let wal_dir = temp_dir("exhaust");
    let mut cfg = config(&fx, 4, &wal_dir, 0);
    cfg.durability.respawn_budget = 1;
    cfg.channel_capacity = 1;
    let probe = MonitorService::start(
        &MonitorConfig {
            shards: 4,
            params: fx.params,
            spec: fx.spec,
            ..MonitorConfig::default()
        },
        fx.network.clone(),
    )
    .expect("probe starts");
    let shard_of: Vec<usize> = fx
        .records
        .iter()
        .map(|r| probe.shard_map().shard_of(r.sensor))
        .collect();
    probe.finish();
    let mut load = [0usize; 4];
    for &s in &shard_of {
        load[s] += 1;
    }
    let victim = (0..4).max_by_key(|&s| load[s]).unwrap();
    cfg.faults = FaultConfig {
        kill_worker: Some(WorkerKill {
            shard: victim,
            after_records: 0,
        }),
        ..FaultConfig::default()
    };

    let mut service = MonitorService::start(&cfg, fx.network.clone()).expect("service starts");
    let mut failures = 0u32;
    let mut live_accepted = false;
    for (&record, &shard) in fx.records.iter().zip(&shard_of) {
        match service.ingest(record) {
            Ok(true) => {
                if shard != victim {
                    live_accepted = true;
                }
            }
            Ok(false) => panic!("Block policy must not drop"),
            Err(MonitorError::ShardFailed {
                shard: failed,
                respawns,
            }) => {
                assert_eq!(failed, victim);
                assert_eq!(respawns, 1);
                failures += 1;
            }
            Err(other) => panic!("unexpected ingest error: {other}"),
        }
    }
    assert!(failures > 0, "the budget must be exhausted by the feed");
    assert!(live_accepted, "other shards must keep ingesting");
    let metrics = service.finish();
    assert_eq!(
        metrics.permanently_failed, 1,
        "counted once, not per reject"
    );
    assert_eq!(metrics.respawns, 1);
    assert_eq!(metrics.dead_shards, vec![victim]);
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Restart after a *clean* shutdown mid-stream: no crash, no repair —
/// recovery replays the log, resumes where the first run stopped, and the
/// combined run equals one uninterrupted service bit-identically.
#[test]
fn clean_shutdown_restart_resumes_bit_identically() {
    let fx = fixture();
    let wal_dir = temp_dir("restart");
    let cfg = config(&fx, 1, &wal_dir, 30);

    let mut first = MonitorService::start(&cfg, fx.network.clone()).expect("service starts");
    let half = fx.records.len() / 2;
    assert!(feed(&mut first, &fx.records[..half]).is_none());
    first.finish();

    let (mut second, report) =
        MonitorService::recover(&cfg, fx.network.clone()).expect("recovery succeeds");
    assert_eq!(
        report.resume_from as usize, half,
        "clean WAL covers the prefix"
    );
    assert!(report.had_checkpoint, "interval 30 must have checkpointed");
    assert!(
        (report.replayed_records as usize) < half,
        "checkpoint must bound the replayed suffix"
    );
    assert_eq!(
        report.repaired_tails, 0,
        "clean shutdown leaves no torn tail"
    );
    let handle = second.handle();
    assert!(feed(&mut second, &fx.records[half..]).is_none());
    second.finish();
    let resumed = (handle.live_micro_clusters(), handle.live_macro_clusters());

    let uninterrupted_dir = temp_dir("restart-ref");
    let ref_cfg = config(&fx, 1, &uninterrupted_dir, 30);
    let (stopped, reference) = run_service(&Io::real(), &fx, &ref_cfg);
    assert_eq!(stopped, None);
    assert_eq!(
        resumed, reference,
        "restart diverged from uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(&uninterrupted_dir);
}

/// `start` must refuse a wal_dir holding a previous run's durable state
/// instead of silently shadowing it with fresh segments.
#[test]
fn start_refuses_a_dirty_wal_dir() {
    let fx = fixture();
    let wal_dir = temp_dir("dirty");
    let cfg = config(&fx, 1, &wal_dir, 0);
    let mut service = MonitorService::start(&cfg, fx.network.clone()).expect("fresh dir starts");
    assert!(feed(&mut service, &fx.records[..20]).is_none());
    service.finish();

    let err = MonitorService::start(&cfg, fx.network.clone())
        .err()
        .expect("dirty wal_dir must be refused");
    assert!(
        err.contains("recover"),
        "error must point at recovery: {err}"
    );
    // recover() is the sanctioned path and must succeed on the same dir.
    let (service, report) =
        MonitorService::recover(&cfg, fx.network.clone()).expect("recovery succeeds");
    assert_eq!(report.resume_from, 20);
    service.finish();
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// `recover` needs a WAL configured, and a checkpoint written for a
/// different shard count is a typed config error, not silent corruption.
#[test]
fn recover_rejects_missing_wal_and_shard_mismatch() {
    let fx = fixture();
    let plain = MonitorConfig {
        shards: 1,
        params: fx.params,
        spec: fx.spec,
        ..MonitorConfig::default()
    };
    let err = MonitorService::recover(&plain, fx.network.clone())
        .err()
        .expect("recover without a WAL must fail");
    assert!(err.contains("wal_dir"), "{err}");

    // Run one shard with checkpoints, then ask recovery for four.
    let wal_dir: PathBuf = temp_dir("mismatch");
    let cfg = config(&fx, 1, &wal_dir, 30);
    let mut service = MonitorService::start(&cfg, fx.network.clone()).expect("service starts");
    assert!(feed(&mut service, &fx.records).is_none());
    service.finish();
    let wrong = config(&fx, 4, &wal_dir, 30);
    let err = MonitorService::recover(&wrong, fx.network.clone())
        .err()
        .expect("shard mismatch must be refused");
    assert!(err.contains("shards"), "{err}");
    let _ = std::fs::remove_dir_all(&wal_dir);
}
