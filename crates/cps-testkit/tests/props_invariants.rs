//! Seeded property suites for the paper's algebraic invariants: merge
//! commutativity/associativity (Property 3), algebraic SF/TF aggregation
//! (Property 2), guided-query safety (Properties 4–5), and cube roll-up
//! consistency. Every suite derives its seed through the testkit harness
//! and reproduces from the printed `CPS_FAULT_SEED` on failure.

use atypical::eval::evaluate;
use atypical::pipeline::build_forest_from_records;
use atypical::{Query, QueryEngine, Strategy};
use cps_core::measure::CountAndTotal;
use cps_core::{AtypicalRecord, ClusterId, Params, SensorId, Severity, TimeWindow};
use cps_cube::{SpatioTemporalCube, TemporalLevel};
use cps_geo::grid::RegionHierarchy;
use cps_geo::UniformGrid;
use cps_sim::{Scale, SimConfig, TrafficSim};
use cps_testkit::fixtures::{cluster_from_records, random_cluster, tiny_day};
use cps_testkit::{canonicalize, run_seeded};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROUNDS: usize = 32;

/// Property 3: cluster merge is commutative — content-equal results for
/// either operand order (IDs are assignment artifacts, excluded).
#[test]
fn merge_is_commutative() {
    run_seeded("merge_is_commutative", |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        for round in 0..ROUNDS {
            let a = random_cluster(&mut rng, 1, 6);
            let b = random_cluster(&mut rng, 2, 6);
            let id = ClusterId::new(100);
            assert_eq!(
                canonicalize(&[a.merge(&b, id)]),
                canonicalize(&[b.merge(&a, id)]),
                "round {round}: merge is order-sensitive"
            );
        }
    });
}

/// Property 3: cluster merge is associative.
#[test]
fn merge_is_associative() {
    run_seeded("merge_is_associative", |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        for round in 0..ROUNDS {
            let a = random_cluster(&mut rng, 1, 6);
            let b = random_cluster(&mut rng, 2, 6);
            let c = random_cluster(&mut rng, 3, 6);
            let id = ClusterId::new(100);
            let left = a.merge(&b, id).merge(&c, id);
            let right = a.merge(&b.merge(&c, id), id);
            assert_eq!(
                canonicalize(&[left]),
                canonicalize(&[right]),
                "round {round}: merge is not associative"
            );
        }
    });
}

/// Property 2: SF/TF are algebraic — clustering any partition of a record
/// set and merging the parts equals clustering the whole set at once.
#[test]
fn partitioned_aggregation_equals_recomputation() {
    run_seeded("partitioned_aggregation_equals_recomputation", |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        for round in 0..ROUNDS {
            let n = rng.gen_range(2..40);
            let records: Vec<AtypicalRecord> = (0..n)
                .map(|_| {
                    AtypicalRecord::new(
                        SensorId::new(rng.gen_range(0..100) as u32),
                        TimeWindow::new(rng.gen_range(0..300) as u32),
                        Severity::from_secs(rng.gen_range(30..3600) as u64),
                    )
                })
                .collect();

            // Random partition into 1..=4 non-empty parts.
            let k = rng.gen_range(1..=4.min(records.len()));
            let mut parts: Vec<Vec<AtypicalRecord>> = vec![Vec::new(); k];
            for (i, &r) in records.iter().enumerate() {
                // Guarantee non-emptiness by spreading the first k records.
                let part = if i < k { i } else { rng.gen_range(0..k) };
                parts[part].push(r);
            }

            let whole = cluster_from_records(0, records);
            let merged = parts
                .into_iter()
                .enumerate()
                .map(|(i, part)| cluster_from_records(i as u64 + 1, part))
                .reduce(|acc, c| acc.merge(&c, ClusterId::new(99)))
                .expect("at least one part");
            assert_eq!(
                canonicalize(&[whole]),
                canonicalize(&[merged]),
                "round {round}: partition-and-merge diverged from recomputation"
            );
        }
    });
}

/// Properties 4–5: the red-zone guided query strategy (Gui) loses no
/// significant cluster relative to integrating everything (All).
#[test]
fn guided_query_equals_naive_on_significant_clusters() {
    run_seeded(
        "guided_query_equals_naive_on_significant_clusters",
        |seed| {
            let days = 5u32;
            let mut nonempty = 0;
            for offset in 0..2u64 {
                let sim = TrafficSim::new(
                    SimConfig::new(Scale::Tiny, seed.wrapping_add(offset))
                        .with_datasets(1)
                        .with_days_per_dataset(days),
                );
                let params = Params::paper_defaults();
                let built = build_forest_from_records(
                    (0..days).map(|d| (d, sim.atypical_day(d))),
                    sim.network(),
                    &params,
                    sim.config().spec,
                );
                let mut forest = built.forest;
                let partition = UniformGrid::over(sim.network(), 3.0).partition(sim.network());
                let engine = QueryEngine::new(sim.network(), &partition, params);
                let query = Query::days(0, days);

                let all = engine.execute(&mut forest, &query, Strategy::All);
                let gui = engine.execute(&mut forest, &query, Strategy::Gui);
                let truth: Vec<_> = all.significant().into_iter().cloned().collect();
                if !truth.is_empty() {
                    nonempty += 1;
                }
                let truth_refs: Vec<&atypical::AtypicalCluster> = truth.iter().collect();
                let pr = evaluate(&gui, &truth_refs);
                assert_eq!(
                    pr.recall,
                    1.0,
                    "dataset seed {}: Gui lost a significant cluster",
                    seed.wrapping_add(offset)
                );
            }
            assert!(nonempty >= 1, "fixture produced no significant clusters");
        },
    );
}

/// Cube roll-up consistency: summing any cuboid — every (spatial level ×
/// temporal level) combination — reproduces the grand total, both the
/// record count and the severity total.
#[test]
fn cube_rollups_are_consistent_at_every_level() {
    run_seeded("cube_rollups_are_consistent_at_every_level", |seed| {
        let (sim, records) = tiny_day(seed);
        let hierarchy = RegionHierarchy::standard(sim.network(), 3.0, 3);
        let num_levels = hierarchy.num_levels();
        let mut cube = SpatioTemporalCube::new(hierarchy, sim.config().spec);
        for r in &records {
            cube.add_atypical(r);
        }
        let grand = cube.grand_total();
        assert_eq!(grand.count, records.len() as u64);
        assert_eq!(
            grand.total,
            records.iter().map(|r| r.severity).sum::<Severity>()
        );

        for spatial in 0..num_levels {
            for temporal in [
                TemporalLevel::Hour,
                TemporalLevel::Day,
                TemporalLevel::Week,
                TemporalLevel::Month,
            ] {
                let rolled = cube.cuboid(spatial, temporal).values().fold(
                    CountAndTotal::default(),
                    |acc, &m| CountAndTotal {
                        count: acc.count + m.count,
                        total: acc.total + m.total,
                    },
                );
                assert_eq!(
                    rolled, grand,
                    "cuboid (spatial {spatial}, {temporal:?}) does not roll up to the grand total"
                );
            }
        }
    });
}
