//! Offline stand-in for `crossbeam`.
//!
//! Implements the subset this workspace uses on top of `std`:
//! [`queue::SegQueue`], [`thread::scope`], [`deque`] work-stealing
//! deques, and MPMC [`channel`]s with optional capacity bounds (real
//! blocking backpressure).

pub mod queue {
    //! Concurrent queues.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue (mutex-backed here; the upstream crate is
    /// lock-free, but the API and semantics match).
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Self {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends an element.
        pub fn push(&self, value: T) {
            self.inner.lock().unwrap().push_back(value);
        }

        /// Removes the head element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

pub mod deque {
    //! Work-stealing deques mirroring `crossbeam-deque`'s FIFO flavor.
    //!
    //! Each worker owns a [`Worker`] it pushes and pops locally; other
    //! workers hold [`Stealer`] handles and take tasks from the same end
    //! when their own deque runs dry. Mutex-backed here (the upstream
    //! crate is lock-free), but the API and the FIFO semantics match.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and may be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }
    }

    /// The owner side of a FIFO work-stealing deque.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// A thief-side handle; clone one per stealing worker.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO deque.
        pub fn new_fifo() -> Self {
            Self {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Creates a thief handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        /// Dequeues the oldest task, if any (FIFO flavor: same end the
        /// stealers take from).
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        /// Whether the deque is empty right now.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the oldest task. The mutex-backed stand-in
        /// never loses a race, so [`Steal::Retry`] is never returned —
        /// callers must still handle it for API parity.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the deque is empty right now.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's closure signature (`|scope| ...`).

    /// Result of a scope: `Err` carries the panic payload of a panicking
    /// child thread.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A spawn handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. A child panic surfaces as `Err(payload)`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod channel {
    //! MPMC channels with optional capacity bounds.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        buf: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiver disconnected; returns the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Non-blocking send failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// All senders disconnected and the buffer is drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing buffered right now.
        Empty,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Timed receive failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with nothing received.
        Timeout,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Creates a channel holding at most `cap` queued messages; `send`
    /// blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    /// Creates a channel without a capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                buf: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the value is queued or every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match inner.cap {
                    Some(cap) if inner.buf.len() >= cap => {
                        inner = self.shared.not_full.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.buf.push_back(value);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Queues the value only if there is room right now.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = inner.cap {
                if inner.buf.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            inner.buf.push_back(value);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().buf.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.buf.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        /// Takes a buffered value if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(v) = inner.buf.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.buf.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().buf.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator until all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Iterator over received messages; ends when the channel disconnects.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    /// Owning iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn segqueue_fifo() {
        let q = queue::SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn deque_fifo_and_steal() {
        let w = deque::Worker::new_fifo();
        let s = w.stealer();
        assert!(w.is_empty());
        assert_eq!(s.steal(), deque::Steal::Empty);
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal(), deque::Steal::Success(2));
        assert_eq!(s.steal().success(), Some(3));
        assert!(s.is_empty());
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn scope_joins_and_collects() {
        let total = std::sync::atomic::AtomicU64::new(0);
        thread::scope(|s| {
            for i in 0..4u64 {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(i, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 6);
    }

    #[test]
    fn scope_reports_child_panic() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn bounded_channel_backpressure() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Full(3))
        ));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn blocked_sender_wakes_on_recv() {
        let (tx, rx) = channel::bounded(1);
        tx.send(0u32).unwrap();
        let sender = std::thread::spawn(move || tx.send(1).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert!(sender.join().unwrap());
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = channel::bounded::<u32>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            channel::RecvTimeoutError::Disconnected
        );
    }

    #[test]
    fn disconnected_send_returns_value() {
        let (tx, rx) = channel::bounded(4);
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }
}
