//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote`) `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` generating impls of the stand-in `serde`
//! crate's `Value`-tree traits. Supported shapes — the ones this workspace
//! uses — follow serde's defaults:
//!
//! * named-field structs → JSON objects,
//! * newtype structs → transparent (the inner value),
//! * other tuple structs → arrays,
//! * unit structs → `null`,
//! * enums → externally tagged (`"Variant"` for unit variants,
//!   `{"Variant": payload}` otherwise),
//! * generic parameters get a `+ serde::Serialize`/`Deserialize` bound.
//!
//! Field attributes (`#[serde(...)]`) are **not** supported and are
//! rejected at expansion time rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Item {
    name: String,
    /// Raw generic parameter chunks, e.g. `"K : Copy + Ord"`.
    generic_chunks: Vec<String>,
    /// Just the parameter names, e.g. `"K"`.
    generic_names: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn is_punct(tree: &TokenTree, c: char) -> bool {
    matches!(tree, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tree: &TokenTree, s: &str) -> bool {
    matches!(tree, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances past leading attributes (`#[...]`, including doc comments) and
/// visibility qualifiers. Panics on `#[serde(...)]`, which we don't honor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                let body = g.stream().to_string();
                assert!(
                    !body.starts_with("serde"),
                    "the offline serde_derive stand-in does not support #[serde(...)] attributes"
                );
                i += 2;
                continue;
            }
        }
        if i < tokens.len() && is_ident(&tokens[i], "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1; // pub(crate) etc.
                }
            }
            continue;
        }
        return i;
    }
}

/// Splits a token run at top-level commas, tracking `<`/`>` depth (groups
/// are already atomic trees, so only angle brackets need counting).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0i32;
    for t in tokens {
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
        } else if depth == 0 && is_punct(t, ',') {
            chunks.push(std::mem::take(&mut current));
            continue;
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parses named fields from the body of a brace group.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    split_top_level(body)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let i = skip_attrs_and_vis(&chunk, 0);
            match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected field name, found {other}"),
            }
        })
        .collect()
}

/// Counts fields of a tuple body (paren group contents).
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    split_top_level(body)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .count()
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    split_top_level(body)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut i = skip_attrs_and_vis(&chunk, 0);
            let name = match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected variant name, found {other}"),
            };
            i += 1;
            let kind = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantKind::Tuple(count_tuple_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantKind::Named(parse_named_fields(&inner))
                }
                _ => VariantKind::Unit, // unit variant (any `= disc` was split off)
            };
            Variant { name, kind }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!(
            "derive target must be a struct or enum, found {}",
            tokens[i]
        );
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    let mut generic_chunks = Vec::new();
    let mut generic_names = Vec::new();
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        let mut depth = 1i32;
        let mut inner = Vec::new();
        i += 1;
        while depth > 0 {
            if is_punct(&tokens[i], '<') {
                depth += 1;
            } else if is_punct(&tokens[i], '>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            inner.push(tokens[i].clone());
            i += 1;
        }
        for chunk in split_top_level(&inner) {
            if chunk.is_empty() {
                continue;
            }
            let pname = match &chunk[0] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("unsupported generic parameter starting with {other}"),
            };
            assert!(
                pname != "const",
                "const generics are not supported by the offline serde_derive stand-in"
            );
            generic_names.push(pname);
            generic_chunks.push(tokens_to_string(&chunk));
        }
    }

    assert!(
        !tokens.get(i).is_some_and(|t| is_ident(t, "where")),
        "where-clauses are not supported by the offline serde_derive stand-in"
    );

    let kind = if is_enum {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::Enum(parse_variants(&inner))
            }
            other => panic!("expected enum body, found {other}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::Tuple(count_tuple_fields(&inner))
            }
            Some(t) if is_punct(t, ';') => Kind::Unit,
            other => panic!("expected struct body, found {other:?}"),
        }
    };

    Item {
        name,
        generic_chunks,
        generic_names,
        kind,
    }
}

/// `impl<K: Copy + Ord + serde::Trait> Trait for Name<K>` header parts.
fn impl_header(item: &Item, trait_path: &str) -> (String, String) {
    let impl_generics = if item.generic_chunks.is_empty() {
        String::new()
    } else {
        let bounded: Vec<String> = item
            .generic_chunks
            .iter()
            .map(|c| {
                if c.contains(':') {
                    format!("{c} + {trait_path}")
                } else {
                    format!("{c} : {trait_path}")
                }
            })
            .collect();
        format!("<{}>", bounded.join(", "))
    };
    let ty_generics = if item.generic_names.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generic_names.join(", "))
    };
    (impl_generics, ty_generics)
}

/// Implements `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (impl_generics, ty_generics) = impl_header(&item, "::serde::Serialize");
    let name = &item.name;

    let body = match &item.kind {
        Kind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|k| format!("f{k}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Array(vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Implements `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (impl_generics, ty_generics) = impl_header(&item, "::serde::Deserialize");
    let name = &item.name;

    let body = match &item.kind {
        Kind::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(entries, \"{f}\"))\
                         .map_err(|e| ::serde::DeError::new(format!(\"{name}.{f}: {{e}}\")))?"
                    )
                })
                .collect();
            format!(
                "let entries = value.as_object().ok_or_else(|| ::serde::DeError::expected(\"{name} object\", value))?;\n\
                 Ok(Self {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Tuple(1) => "Ok(Self(::serde::Deserialize::from_value(value)?))".to_string(),
        Kind::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Deserialize::from_value(&items[{idx}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| ::serde::DeError::expected(\"{name} array\", value))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::DeError::new(format!(\"{name}: expected {n} elements, found {{}}\", items.len())));\n\
                 }}\n\
                 Ok(Self({}))",
                inits.join(", ")
            )
        }
        Kind::Unit => "Ok(Self)".to_string(),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&items[{k}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let items = payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"{name}::{vn} array\", payload))?;\n\
                                     if items.len() != {n} {{ return Err(::serde::DeError::new(\"{name}::{vn}: wrong arity\".to_string())); }}\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::Deserialize::from_value(::serde::get_field(entries, \"{f}\"))?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let entries = payload.as_object().ok_or_else(|| ::serde::DeError::expected(\"{name}::{vn} object\", payload))?;\n\
                                     return Ok({name}::{vn} {{ {} }});\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(tag) = value {{\n\
                     match tag.as_str() {{ {unit} _ => {{}} }}\n\
                 }}\n\
                 if let Some(entries) = value.as_object() {{\n\
                     if let Some((tag, payload)) = entries.first() {{\n\
                         match tag.as_str() {{ {tagged} _ => {{}} }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::DeError::new(format!(\"unknown {name} variant in {{value:?}}\")))",
                unit = unit_arms.join(" "),
                tagged = tagged_arms.join(" ")
            )
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
