//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, range strategies over
//! integers and floats, tuple strategies, [`collection::vec`],
//! [`sample::select`], [`Strategy::prop_map`], and
//! `prop_assert!`/`prop_assert_eq!`. Cases are generated from a
//! deterministic per-test seed. **No shrinking**: a failing case reports
//! its inputs via the assertion message and the case index.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic test-case generator (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        let mut rng = TestRng { state: seed };
        let _ = rng.next_u64();
        rng
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always-`value` strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty options");
        Select { options }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() as usize) % self.options.len();
            self.options[idx].clone()
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let text = std::env::var(name).ok()?;
    Some(
        text.trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} is not a u64: {text:?}")),
    )
}

/// Runs `case` for `config.cases` deterministic seeds; panics on the first
/// failure, reporting the case index and the exact `PROPTEST_SEED` that
/// reruns just that case (inputs are not shrunk).
///
/// Environment knobs:
/// * `PROPTEST_CASES` overrides every property's case count — a CI budget
///   dial (small for quick runs, large for soak runs).
/// * `PROPTEST_SEED` runs exactly one case from the given seed, as printed
///   by a failure message.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    if let Some(seed) = env_u64("PROPTEST_SEED") {
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = case(&mut rng) {
            panic!("proptest property {name} failed at PROPTEST_SEED={seed}: {e}");
        }
        return;
    }
    // FNV-1a over the test name keeps seeds distinct across properties.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let cases = env_u64("PROPTEST_CASES").map_or(config.cases, |n| n as u32);
    for i in 0..cases {
        let case_seed = seed.wrapping_add(u64::from(i));
        let mut rng = TestRng::from_seed(case_seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest property {name} failed at case {i}/{cases} \
                 (rerun just this case with PROPTEST_SEED={case_seed}): {e}"
            );
        }
    }
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

pub mod prelude {
    //! Glob-import surface mirroring upstream proptest's prelude.

    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        //! `prop::collection` / `prop::sample` paths as used in tests.

        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let cfg = ProptestConfig::with_cases(200);
        crate::run_cases(&cfg, "bounds", |rng| {
            let n = (3u32..9).generate(rng);
            prop_assert!((3..9).contains(&n));
            let x = (0.25f64..=0.75).generate(rng);
            prop_assert!((0.25..=0.75).contains(&x));
            let v = prop::collection::vec(0u64..5, 1..4).generate(rng);
            prop_assert!(!v.is_empty() && v.len() < 4);
            let (a, b) = (0u32..2, 5i64..7).generate(rng);
            prop_assert!(a < 2 && (5..7).contains(&b));
            let doubled = (1u32..4).prop_map(|k| k * 2).generate(rng);
            prop_assert!(doubled % 2 == 0 && doubled < 8);
            let pick = prop::sample::select(vec![1u32, 5, 10]).generate(rng);
            prop_assert!([1, 5, 10].contains(&pick));
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires args, config and assertions together.
        #[test]
        fn macro_end_to_end(
            xs in prop::collection::vec(0u32..50, 0..10),
            k in 1u32..5,
        ) {
            let sum: u32 = xs.iter().sum();
            prop_assert!(sum <= 50 * 10);
            prop_assert_eq!(k.checked_mul(0), Some(0));
        }
    }

    #[test]
    fn failure_message_names_a_reproducible_seed() {
        let err = std::panic::catch_unwind(|| {
            let cfg = ProptestConfig::with_cases(3);
            crate::run_cases(&cfg, "seed_hint", |rng| {
                let _ = rng.next_u64();
                Err(TestCaseError::fail("boom"))
            })
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("PROPTEST_SEED="), "{msg}");
    }

    #[test]
    fn env_knob_parses_u64() {
        std::env::set_var("PROPTEST_SHIM_TEST_KNOB", "17");
        assert_eq!(crate::env_u64("PROPTEST_SHIM_TEST_KNOB"), Some(17));
        std::env::remove_var("PROPTEST_SHIM_TEST_KNOB");
        assert_eq!(crate::env_u64("PROPTEST_SHIM_TEST_KNOB"), None);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        let cfg = ProptestConfig::with_cases(10);
        crate::run_cases(&cfg, "always_fails", |rng| {
            let n = (0u32..100).generate(rng);
            prop_assert!(n > 1000, "n was {n}");
            Ok(())
        });
    }
}
