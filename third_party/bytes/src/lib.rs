//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Buf`]/[`BufMut`] subset this workspace uses: little-endian
//! fixed-width integer and float codecs plus raw slice access, implemented
//! for `&[u8]` (reading) and `Vec<u8>` (writing).

/// Read-side cursor over a byte buffer.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write-side sink for a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 3);
        let mut out = [0u8; 3];
        r.copy_to_slice(&mut out);
        assert_eq!(&out, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }
}
