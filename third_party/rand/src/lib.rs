//! Offline stand-in for the `rand` crate.
//!
//! Provides [`rngs::StdRng`] plus the [`Rng`], [`SeedableRng`] and
//! [`seq::SliceRandom`] subset this workspace uses. The generator is
//! SplitMix64 — deterministic per seed and statistically fine for the
//! simulator and tests, but its streams differ from upstream rand's
//! ChaCha-based `StdRng`.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from their "natural" distribution via
/// [`Rng::gen`] (unit interval for floats, full range for integers).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types drawable uniformly between two bounds; enables the single
/// blanket [`SampleRange`] impl that keeps literal-type inference working
/// (`gen_range(0.9..1.05)` must infer `f64` via fallback, which requires
/// the range's element type to unify with the output type structurally).
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u: $t = StandardSample::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing generator methods (blanket-implemented for any [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws from the type's natural distribution ([`StandardSample`]).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble once so nearby seeds diverge immediately.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Slice helpers driven by a generator.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut c = StdRng::seed_from_u64(10);
        let xs: Vec<u64> = (0..5).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..5).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..5).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = rng.gen_range(-25.0..25.0);
            assert!((-25.0..25.0).contains(&x));
            let n = rng.gen_range(60..600);
            assert!((60..600).contains(&n));
            let k: u8 = rng.gen_range(1..=3u8);
            assert!((1..=3).contains(&k));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
        assert!(v.choose(&mut rng).is_some());
    }
}
