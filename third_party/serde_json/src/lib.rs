//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON through the stand-in `serde` crate's [`Value`]
//! tree. Covers the workspace's usage: [`to_string`], [`to_string_pretty`]
//! and [`from_str`]. Numbers parse to `U64`/`I64` when integral and `F64`
//! otherwise; strings support the standard JSON escapes (`\uXXXX`
//! included, with surrogate pairs).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse failure.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses `text` as JSON and deserializes it into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Keep integral floats recognizably floating-point.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                // JSON has no Inf/NaN; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape character {:?}",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so boundaries exist).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&7u32).unwrap(), "7");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u32>("7").unwrap(), 7);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("2.25").unwrap(), 2.25);
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);

        let pair: (u32, String) = (9, "hi \"there\"\n".to_string());
        let json = to_string(&pair).unwrap();
        assert_eq!(from_str::<(u32, String)>(&json).unwrap(), pair);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("4").unwrap(), Some(4));
    }

    #[test]
    fn pretty_print_shape() {
        let v = vec![1u32, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let s: String = from_str(r#""aA\né😀""#).unwrap();
        assert_eq!(s, "aA\né😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }
}
