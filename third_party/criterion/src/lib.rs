//! Offline stand-in for `criterion`.
//!
//! Benches compile and run with the same source as upstream criterion but
//! the harness is a plain wall-clock loop: each benchmark is timed over a
//! fixed iteration budget and reported as ns/iter (plus derived
//! throughput when one was set). No statistics, outlier analysis, plots,
//! or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let measure_for = self.measure_for;
        run_benchmark(name, None, measure_for, routine);
        self
    }
}

/// Benchmark identifier: a function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id combining `function_name` and `parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes statistical sample count; the stand-in keeps its
    /// fixed time budget, so this only exists for source compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Same: accepted, but the fixed budget is used instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.throughput, self.criterion.measure_for, routine);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.throughput, self.criterion.measure_for, |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (upstream emits summary artifacts here; no-op).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to each benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this measurement pass's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    label: &str,
    throughput: Option<Throughput>,
    measure_for: Duration,
    mut routine: F,
) where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: time one iteration to size the real budget.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (measure_for.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let ns = bencher.elapsed.as_nanos() as f64 / iters as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.0} elem/s", n as f64 / (ns / 1e9)),
        Throughput::Bytes(n) => {
            format!(", {:.1} MiB/s", n as f64 / (ns / 1e9) / (1024.0 * 1024.0))
        }
    });
    println!(
        "bench {label:<50} {ns:>12.1} ns/iter ({iters} iters{})",
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        c.bench_function("standalone", |b| b.iter(|| 1u64 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| k * 2);
        });
        group.finish();
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
