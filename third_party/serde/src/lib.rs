//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, serialization goes through an
//! owned [`Value`] tree: `Serialize` renders a value into the tree,
//! `Deserialize` rebuilds one from it. `serde_json` (the sibling stand-in)
//! prints and parses the tree as JSON. The derive macros re-exported here
//! generate the obvious structural impls, mirroring serde's defaults:
//! transparent newtype structs, externally-tagged enums, string-named
//! fields.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::BuildHasher;

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data tree (a superset of JSON's model: integers keep
/// their signedness until printed).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key-ordered mapping (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: what was expected versus what the tree held.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Builds an error from a full message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Builds an "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self::new(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// Converts to the intermediate tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Converts from the intermediate tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Looks up a struct field in an object, tolerating absence by returning
/// `Null` (so `Option` fields default to `None`, as with serde).
pub fn get_field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null)
}

// ---------------------------------------------------------------- numbers

fn integer_of(value: &Value) -> Option<i128> {
    match *value {
        Value::U64(u) => Some(i128::from(u)),
        Value::I64(i) => Some(i128::from(i)),
        Value::F64(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(f as i128),
        _ => None,
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = integer_of(value)
                    .ok_or_else(|| DeError::expected(stringify!($t), value))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = integer_of(value)
                    .ok_or_else(|| DeError::expected(stringify!($t), value))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match *value {
                    Value::F64(f) => Ok(f as $t),
                    Value::U64(u) => Ok(u as $t),
                    Value::I64(i) => Ok(i as $t),
                    _ => Err(DeError::expected("number", value)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

// ----------------------------------------------------------- other scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", value)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", value)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", value)),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("tuple array", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected array of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys that can cross JSON's string-keyed object representation.
pub trait MapKey: Sized {
    /// Renders the key as an object key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError::new(format!(
                        "invalid {} map key: {key:?}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        String::from_value(value).map(Into::into)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrips_through_null() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Some(3u32).to_value(), Value::U64(3));
        assert_eq!(Option::<u32>::from_value(&Value::U64(3)), Ok(Some(3)));
    }

    #[test]
    fn signed_negative_uses_i64() {
        assert_eq!((-5i32).to_value(), Value::I64(-5));
        assert_eq!(5i32.to_value(), Value::U64(5));
        assert_eq!(i32::from_value(&Value::I64(-5)), Ok(-5));
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn map_with_integer_keys() {
        let mut m: HashMap<u32, String> = HashMap::new();
        m.insert(7, "x".to_owned());
        let v = m.to_value();
        let back: HashMap<u32, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let obj = vec![("a".to_owned(), Value::U64(1))];
        assert_eq!(get_field(&obj, "a"), &Value::U64(1));
        assert_eq!(get_field(&obj, "b"), &Value::Null);
    }
}
