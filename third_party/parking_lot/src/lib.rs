//! Offline stand-in for `parking_lot`.
//!
//! Thin non-poisoning wrappers over the standard-library primitives: the
//! guard types come straight back from `std`, but a poisoned lock (a thread
//! panicked while holding it) just clears the poison instead of infecting
//! every later acquisition, matching parking_lot's no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match self.inner.wait(guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Blocks until notified or `timeout` elapses. Returns the reacquired
    /// guard and whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.inner.wait_timeout(guard, timeout) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(poisoned) => {
                let (g, res) = poisoned.into_inner();
                (g, res.timed_out())
            }
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
