#!/usr/bin/env bash
# Local CI gate: format, lints, tests, fault suite. Run from anywhere in
# the repo.
#
# Budget knobs:
#   PROPTEST_CASES  cases per property (default here: 16 for a fast gate;
#                   unset it to use each test's own count)
#   CI_FUZZ=1       soak mode: 256 cases per property
set -euo pipefail
cd "$(dirname "$0")/.."

# Property-test budget: small by default so the gate stays fast, large
# under CI_FUZZ=1. An explicit PROPTEST_CASES always wins.
if [[ -z "${PROPTEST_CASES:-}" ]]; then
  if [[ "${CI_FUZZ:-0}" == "1" ]]; then
    export PROPTEST_CASES=256
  else
    export PROPTEST_CASES=16
  fi
fi
echo "==> PROPTEST_CASES=${PROPTEST_CASES}"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

# The fault-injection and crash-recovery suite once more under a fixed
# seed, so the exact sweep CI certifies is reproducible on any machine
# with `CPS_FAULT_SEED=42 cargo test -p cps-testkit`.
echo "==> CPS_FAULT_SEED=42 cargo test -p cps-testkit -q"
CPS_FAULT_SEED=42 cargo test -p cps-testkit -q

# Crash-recovery gate for the durable monitor under the same fixed seed:
# the exhaustive every-op-boundary crash sweeps plus the WAL-format fuzz
# (torn frames at every byte of representative appends, tail repair,
# segment rotation edge cases in cps-storage's wal unit tests).
echo "==> CPS_FAULT_SEED=42 monitor crash-recovery sweeps"
CPS_FAULT_SEED=42 cargo test -q -p cps-testkit --test monitor_recovery
CPS_FAULT_SEED=42 cargo test -q -p cps-storage wal

# Parallel-engine matrix: the bit-identity differential suites once more
# with the thread sweep pinned to the sequential path and to a fixed
# parallel width, so CI certifies both ends of the knob regardless of what
# CPS_PAR_THREADS a developer machine defaults to.
for width in 1 4; do
  echo "==> CPS_PAR_THREADS=${width} par-matrix differential suites"
  CPS_PAR_THREADS=${width} cargo test -q -p atypical \
    --test par_differential --test property3_permutation
  CPS_PAR_THREADS=${width} cargo test -q -p cps-testkit --test par_matrix
done

# Integration bench smoke: tiny sizes, one iteration. The command itself
# asserts the naive and indexed strategies produce identical macro-cluster
# sets, so this gates the indexed hot path end to end. Writes to results/
# (not the repo-root BENCH_integrate.json, which is the committed
# full-scale perf-trajectory artifact from `repro integrate` in release).
echo "==> repro integrate (smoke)"
cargo run -q -p cps-bench --bin repro -- integrate \
  --sizes 150,400,800 --iters 1 --bench-out results/BENCH_integrate_smoke.json
test -s results/BENCH_integrate_smoke.json

# Forest bench smoke: a short thread sweep in debug. The run itself
# asserts every thread count reproduces the sequential build bit-for-bit
# (fingerprints include merge ids and stats), so this gates the whole
# parallel construction engine end to end.
echo "==> repro forest (smoke)"
cargo run -q -p cps-bench --bin repro -- forest \
  --days 8 --threads 1,4 --iters 1 --bench-out results/BENCH_forest_smoke.json
test -s results/BENCH_forest_smoke.json

# Serving-layer concurrency gate: the seeded stress suite (readers racing
# ingest, day seals, and checkpoints — every pinned snapshot checked for
# torn-publication invariants) plus the quiescent differential suite
# (mutex == ReadView == cached == cache-off, including the recovered-
# service initial view), a few times so the scheduler gets chances to
# interleave differently on small hosts.
echo "==> serving-layer stress + differential suites"
for _ in 1 2 3; do
  cargo test -q -p cps-monitor --test serving_stress
done
cargo test -q -p cps-monitor --test serving_differential

# Query-serving bench smoke: tiny feed, one iteration, one reader per
# path. The run itself cross-checks cached == uncached == mutex answers
# at quiescence (it panics on any divergence before writing the
# artifact), so this gates the snapshot publication + cache path end to
# end. The committed repo-root BENCH_query_serving.json is the
# full-scale release artifact from `repro query-serving --scale small
# --threads 1,4,8`.
echo "==> repro query-serving (smoke)"
cargo run -q -p cps-bench --bin repro -- query-serving \
  --days 2 --max-records 300 --threads 1 --iters 1 \
  --bench-out results/BENCH_query_serving_smoke.json
test -s results/BENCH_query_serving_smoke.json

# Recovery bench smoke: one day, capped feed, one iteration. The run
# itself asserts planted checkpoints shrink the replayed suffix and that
# recovery succeeds at every suffix length, so this gates the WAL +
# checkpoint + replay path end to end on top of the sweeps above.
echo "==> repro monitor-recovery (smoke)"
cargo run -q -p cps-bench --bin repro -- monitor-recovery \
  --days 1 --max-records 300 --iters 1 \
  --bench-out results/BENCH_recovery_smoke.json
test -s results/BENCH_recovery_smoke.json

echo "CI green."
