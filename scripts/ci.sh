#!/usr/bin/env bash
# Local CI gate: format, lints, tests. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "CI green."
